"""A single simulated machine (compute node).

The machine owns all *local* runtime state — running containers, the
low-priority container queue, power state — and all telemetry accounting.
Telemetry uses exact time integrals: every state change first advances the
integrals with the old state (``advance``), then applies the change, so the
hourly averages are exact regardless of event spacing. At every hour boundary
the simulator calls :meth:`flush_hour`, which emits one
:class:`~repro.telemetry.records.MachineHourRecord` and resets accumulators.

Task-duration model (Level IV abstraction — machines matter, individual
task-to-task interference does not):

``duration = work / (speed · feature · throttle) · (1 + beta·util) · io_penalty``

where ``speed`` is the SKU per-core speed, ``throttle`` the power-capping
frequency factor, ``beta`` the SKU contention sensitivity, ``util`` the CPU
utilization at task start, and ``io_penalty`` grows with the machine's
current I/O rate against the temp-store medium (HDD for SC1, SSD for SC2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.cluster import power as power_model
from repro.cluster.config import GroupLimits
from repro.cluster.sku import Sku
from repro.cluster.software import MachineGroupKey, SoftwareConfig
from repro.telemetry.records import MachineHourRecord, QueueStats

__all__ = ["Machine", "QueuedTask", "RAM_BASE_GB", "SSD_BASE_GB"]

RAM_BASE_GB = 6.0
"""OS / agent / cache RAM footprint with zero containers (intercept of Eq. 12)."""

SSD_BASE_GB = 40.0
"""Base SSD footprint (system images, logs) with zero containers (Eq. 11)."""


@dataclass(slots=True)
class QueuedTask:
    """A container waiting in a machine's low-priority queue."""

    task: object  # repro.workload.task.Task; typed loosely to avoid a cycle
    enqueue_time: float


class Machine:
    """One compute node: identity, configuration, runtime state, telemetry."""

    __slots__ = (
        "machine_id",
        "name",
        "sku",
        "software",
        "rack",
        "chassis",
        "row",
        "subcluster",
        "max_running_containers",
        "max_queued_containers",
        "cap_watts",
        "feature_enabled",
        "faulted",
        "slowdown",
        "n_running",
        "active_cores",
        "io_rate_bytes_per_s",
        "ram_gb_in_use",
        "ssd_gb_in_use",
        "queue",
        "_last_update",
        "_int_active_cores",
        "_int_containers",
        "_int_io_bytes",
        "_int_ram",
        "_int_ssd",
        "_int_power",
        "_int_queue_len",
        "_tasks_finished",
        "_cpu_seconds",
        "_task_seconds",
        "_queue_waits",
        "_queue_enqueued",
        "_queue_dequeued",
        "_uncapped_seconds",
        "_uncapped_util_pow_seconds",
        "_fault_seconds",
    )

    def __init__(
        self,
        machine_id: int,
        sku: Sku,
        software: SoftwareConfig,
        rack: int,
        chassis: int,
        row: int,
        subcluster: int,
        limits: GroupLimits,
    ):
        self.machine_id = machine_id
        self.name = f"m{machine_id:06d}"
        self.sku = sku
        self.software = software
        self.rack = rack
        self.chassis = chassis
        self.row = row
        self.subcluster = subcluster
        self.max_running_containers = limits.max_running_containers
        self.max_queued_containers = limits.max_queued_containers
        self.cap_watts: float | None = None
        self.feature_enabled = False
        # Fault-plane state: a faulted (crashed) machine accepts no work and
        # draws no power; ``slowdown`` > 1 models a straggler (degraded node).
        self.faulted = False
        self.slowdown = 1.0
        # Runtime state.
        self.n_running = 0
        self.active_cores = 0.0
        self.io_rate_bytes_per_s = 0.0
        self.ram_gb_in_use = RAM_BASE_GB
        self.ssd_gb_in_use = SSD_BASE_GB
        self.queue: deque[QueuedTask] = deque()
        # Telemetry integrals for the current hour.
        self._last_update = 0.0
        self._reset_accumulators()

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------
    @property
    def group_key(self) -> MachineGroupKey:
        """The SC–SKU machine-group this machine belongs to."""
        return MachineGroupKey(software=self.software.name, sku=self.sku.name)

    @property
    def has_free_slot(self) -> bool:
        """True when another container may start right now."""
        return self.n_running < self.max_running_containers and not self.faulted

    @property
    def has_queue_space(self) -> bool:
        """True when another container may be queued."""
        return len(self.queue) < self.max_queued_containers and not self.faulted

    @property
    def cpu_utilization(self) -> float:
        """Instantaneous CPU utilization in [0, 1]."""
        return min(1.0, self.active_cores / self.sku.cores)

    # ------------------------------------------------------------------
    # Task-duration model
    # ------------------------------------------------------------------
    def effective_speed(self) -> float:
        """Per-core speed including SKU, Feature, and power throttling."""
        speed = self.sku.speed_factor
        if self.feature_enabled:
            speed *= power_model.FEATURE_SPEED_BOOST
        speed *= power_model.throttle_factor(
            self.sku, self.cpu_utilization, self.feature_enabled, self.cap_watts
        )
        return speed

    def io_penalty(self) -> float:
        """Duration multiplier from temp-store I/O contention (≥ 1).

        SC1 (temp store on HDD) divides the current I/O rate by the slow HDD
        bandwidth, SC2 by the much larger SSD bandwidth, so the same load
        penalizes SC1 far more — the mechanism behind Table 4.
        """
        if self.software.temp_store_on_ssd:
            capacity = self.sku.ssd_io_mbps * 1e6
        else:
            capacity = self.sku.hdd_io_mbps * 1e6
        pressure = self.io_rate_bytes_per_s / capacity
        return 1.0 + self.software.io_contention_coeff * pressure

    def task_duration(self, work_seconds: float) -> float:
        """Execution time of ``work_seconds`` of normalized work started now."""
        utilization = self.cpu_utilization
        speed = self.effective_speed()
        contention = 1.0 + self.sku.contention_beta * utilization
        # ``slowdown`` is 1.0 on healthy machines; multiplying by exactly 1.0
        # is a bitwise no-op, so the no-fault path is unchanged.
        return work_seconds / speed * contention * self.io_penalty() * self.slowdown

    def power_draw(self) -> float:
        """Current power draw in watts (post-capping)."""
        return power_model.power_draw_watts(
            self.sku, self.cpu_utilization, self.feature_enabled, self.cap_watts
        )

    # ------------------------------------------------------------------
    # State transitions (the simulator calls these)
    # ------------------------------------------------------------------
    def advance(self, now: float) -> None:
        """Integrate telemetry up to ``now`` with the current state.

        Power draw is affine in utilization when no cap is set, so for
        uncapped machines (the common case) the power integral is derived
        from the active-core integral at flush time instead of per event.
        """
        dt = now - self._last_update
        if dt <= 0.0:
            self._last_update = max(self._last_update, now)
            return
        self._int_active_cores += min(self.active_cores, self.sku.cores) * dt
        self._int_containers += self.n_running * dt
        self._int_io_bytes += self.io_rate_bytes_per_s * dt
        self._int_ram += self.ram_gb_in_use * dt
        self._int_ssd += self.ssd_gb_in_use * dt
        if self.faulted:
            # A crashed machine is powered off: no power integral, and the
            # downtime itself is accumulated for the availability column.
            self._fault_seconds += dt
        elif self.cap_watts is not None:
            self._int_power += self.power_draw() * dt
        else:
            self._uncapped_seconds += dt
            self._uncapped_util_pow_seconds += (
                self.cpu_utilization**power_model.UTILIZATION_EXPONENT * dt
            )
        if self.queue:
            self._int_queue_len += len(self.queue) * dt
        self._last_update = now

    def start_task(self, now: float, cpu_fraction: float, ram_gb: float,
                   ssd_gb: float, data_bytes: float, work_seconds: float) -> float:
        """Admit one container now; return its execution duration in seconds."""
        self.advance(now)
        self.n_running += 1
        self.active_cores += cpu_fraction
        self.ram_gb_in_use += ram_gb
        self.ssd_gb_in_use += ssd_gb
        duration = self.task_duration(work_seconds)
        self.io_rate_bytes_per_s += data_bytes / duration
        return duration

    def finish_task(self, now: float, cpu_fraction: float, ram_gb: float,
                    ssd_gb: float, data_bytes: float, duration: float) -> None:
        """Release one container's resources and account its totals."""
        self.advance(now)
        self.n_running -= 1
        self.active_cores = max(0.0, self.active_cores - cpu_fraction)
        self.ram_gb_in_use = max(RAM_BASE_GB, self.ram_gb_in_use - ram_gb)
        self.ssd_gb_in_use = max(SSD_BASE_GB, self.ssd_gb_in_use - ssd_gb)
        self.io_rate_bytes_per_s = max(
            0.0, self.io_rate_bytes_per_s - data_bytes / duration
        )
        self._tasks_finished += 1
        self._cpu_seconds += cpu_fraction * duration
        self._task_seconds += duration

    def enqueue(self, now: float, task: object) -> None:
        """Queue a low-priority container on this machine."""
        self.advance(now)
        self.queue.append(QueuedTask(task=task, enqueue_time=now))
        self._queue_enqueued += 1

    def dequeue(self, now: float) -> tuple[object, float] | None:
        """Pop the oldest queued container; returns (task, wait) or None."""
        if not self.queue:
            return None
        self.advance(now)
        queued = self.queue.popleft()
        wait = now - queued.enqueue_time
        self._queue_waits.append(wait)
        self._queue_dequeued += 1
        return queued.task, wait

    # ------------------------------------------------------------------
    # Fault lifecycle
    # ------------------------------------------------------------------
    def crash(self, now: float) -> None:
        """Take the machine down hard at ``now``.

        Running containers vanish instantly (the simulator requeues them
        elsewhere) and runtime state drops to the powered-off baseline. The
        caller must have drained ``queue`` first — queued tasks carry their
        accrued wait to their next placement.
        """
        self.advance(now)
        self.faulted = True
        self.n_running = 0
        self.active_cores = 0.0
        self.io_rate_bytes_per_s = 0.0
        self.ram_gb_in_use = RAM_BASE_GB
        self.ssd_gb_in_use = SSD_BASE_GB

    def recover(self, now: float) -> None:
        """Bring a crashed machine back into service at ``now``."""
        self.advance(now)
        self.faulted = False

    def note_carried_wait(self, wait: float) -> None:
        """Record a queue wait inherited from a crashed machine's queue.

        Keeps the frame's wait samples end-to-end when a queued task's
        machine dies and the task starts immediately at its next placement
        (a queued re-placement folds the carry into ``enqueue_time`` instead).
        """
        self._queue_waits.append(wait)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _finish_hour(self, now: float) -> tuple:
        """Close the hour's integrals and return the computed hour values.

        Shared between the columnar and record-level flush paths so the two
        can never drift. Returns the value tuple *before* resetting, in
        record-field order: (cpu_utilization, avg_running_containers,
        total_data_read_bytes, tasks_finished, total_cpu_seconds,
        total_task_seconds, avg_cores_in_use, avg_ram_gb_in_use,
        avg_ssd_gb_in_use, avg_power_watts, queue_avg_length,
        queue_enqueued, queue_dequeued, queue_waits, available_fraction,
        faulted).
        """
        self.advance(now)
        seconds = 3600.0
        if self._uncapped_seconds > 0.0:
            # Uncapped draw = idle + dynamic·util^exp; both terms were
            # integrated piecewise in advance(), so this is exact.
            dynamic = power_model.dynamic_power_watts(self.sku, self.feature_enabled)
            self._int_power += (
                self.sku.power_idle_watts * self._uncapped_seconds
                + dynamic * self._uncapped_util_pow_seconds
            )
        values = (
            self._int_active_cores / (self.sku.cores * seconds),
            self._int_containers / seconds,
            self._int_io_bytes,
            self._tasks_finished,
            self._cpu_seconds,
            self._task_seconds,
            self._int_active_cores / seconds,
            self._int_ram / seconds,
            self._int_ssd / seconds,
            self._int_power / seconds,
            self._int_queue_len / seconds,
            self._queue_enqueued,
            self._queue_dequeued,
            self._queue_waits,
            # 0.0 fault-seconds divides to exactly 0.0, so the no-fault
            # availability is the literal 1.0 every consumer expects.
            1.0 - self._fault_seconds / seconds,
            self._fault_seconds > 0.0,
        )
        self._reset_accumulators()
        return values

    def flush_hour_into(self, now: float, hour: int, frame) -> None:
        """Append the machine-hour ending at ``now`` straight into ``frame``.

        The simulator hot path: no per-record dataclass is allocated — the
        hour's values land directly in the frame's column buffers.
        """
        (
            cpu_utilization,
            avg_running_containers,
            total_data_read_bytes,
            tasks_finished,
            total_cpu_seconds,
            total_task_seconds,
            avg_cores_in_use,
            avg_ram_gb_in_use,
            avg_ssd_gb_in_use,
            avg_power_watts,
            queue_avg_length,
            queue_enqueued,
            queue_dequeued,
            queue_waits,
            available_fraction,
            faulted,
        ) = self._finish_hour(now)
        # Positional call in append_hour's declared order: this runs once
        # per machine-hour, and keyword packing is measurable at fleet scale.
        frame.append_hour(
            self.machine_id,
            self.name,
            self.sku.name,
            self.software.name,
            self.rack,
            self.row,
            self.subcluster,
            hour,
            cpu_utilization,
            avg_running_containers,
            total_data_read_bytes,
            tasks_finished,
            total_cpu_seconds,
            total_task_seconds,
            avg_cores_in_use,
            avg_ram_gb_in_use,
            avg_ssd_gb_in_use,
            avg_power_watts,
            self.cap_watts,
            self.feature_enabled,
            self.max_running_containers,
            queue_avg_length,
            queue_enqueued,
            queue_dequeued,
            queue_waits,
            available_fraction,
            faulted,
        )

    def flush_hour(self, now: float, hour: int) -> MachineHourRecord:
        """Emit the machine-hour record ending at ``now`` and reset integrals."""
        (
            cpu_utilization,
            avg_running_containers,
            total_data_read_bytes,
            tasks_finished,
            total_cpu_seconds,
            total_task_seconds,
            avg_cores_in_use,
            avg_ram_gb_in_use,
            avg_ssd_gb_in_use,
            avg_power_watts,
            queue_avg_length,
            queue_enqueued,
            queue_dequeued,
            queue_waits,
            available_fraction,
            faulted,
        ) = self._finish_hour(now)
        return MachineHourRecord(
            machine_id=self.machine_id,
            machine_name=self.name,
            sku=self.sku.name,
            software=self.software.name,
            rack=self.rack,
            row=self.row,
            subcluster=self.subcluster,
            hour=hour,
            cpu_utilization=cpu_utilization,
            avg_running_containers=avg_running_containers,
            total_data_read_bytes=total_data_read_bytes,
            tasks_finished=tasks_finished,
            total_cpu_seconds=total_cpu_seconds,
            total_task_seconds=total_task_seconds,
            avg_cores_in_use=avg_cores_in_use,
            avg_ram_gb_in_use=avg_ram_gb_in_use,
            avg_ssd_gb_in_use=avg_ssd_gb_in_use,
            avg_power_watts=avg_power_watts,
            power_cap_watts=self.cap_watts,
            feature_enabled=self.feature_enabled,
            max_running_containers=self.max_running_containers,
            available_fraction=available_fraction,
            faulted=faulted,
            queue=QueueStats(
                avg_length=queue_avg_length,
                enqueued=queue_enqueued,
                dequeued=queue_dequeued,
                waits=queue_waits,
            ),
        )

    def apply_limits(self, limits: GroupLimits) -> None:
        """Apply new YARN limits (running tasks are never killed)."""
        self.max_running_containers = limits.max_running_containers
        self.max_queued_containers = limits.max_queued_containers

    def _reset_accumulators(self) -> None:
        self._uncapped_seconds = 0.0
        self._uncapped_util_pow_seconds = 0.0
        self._int_active_cores = 0.0
        self._int_containers = 0.0
        self._int_io_bytes = 0.0
        self._int_ram = 0.0
        self._int_ssd = 0.0
        self._int_power = 0.0
        self._int_queue_len = 0.0
        self._tasks_finished = 0
        self._cpu_seconds = 0.0
        self._task_seconds = 0.0
        self._queue_waits = []
        self._queue_enqueued = 0
        self._queue_dequeued = 0
        self._fault_seconds = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine({self.name}, {self.group_key.label}, "
            f"running={self.n_running}/{self.max_running_containers})"
        )
