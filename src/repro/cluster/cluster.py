"""Cluster: fleet topology, machine groups, and configuration application.

A cluster is a fleet of machines organized physically (chassis → rack → row →
sub-cluster) and logically (machine groups = SC–SKU combinations, the Level V
abstraction). Racks are homogeneous in SKU and software configuration —
machines racked together were purchased and imaged together (Section 7.1), a
fact the "ideal" experiment setting exploits by splitting a rack into
alternating control/experiment machines.

The default fleet mirrors Figure 2's shape: a long tail of older generations
that operators have pushed hard (overcommitted container limits) and newer
generations still run conservatively — the tuning headroom KEA harvests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.config import GroupLimits, YarnConfig
from repro.cluster.machine import Machine
from repro.cluster.power import cap_watts_for_level
from repro.cluster.sku import DEFAULT_SKUS, Sku, sku_by_name
from repro.cluster.software import SOFTWARE_CONFIGS, MachineGroupKey, SoftwareConfig
from repro.utils.errors import ConfigurationError

__all__ = [
    "SkuPopulation",
    "FleetSpec",
    "Cluster",
    "build_cluster",
    "default_fleet_spec",
    "small_application_fleet_spec",
    "small_fleet_spec",
    "default_yarn_config",
]


@dataclass(frozen=True, slots=True)
class SkuPopulation:
    """How many machines of one SKU to deploy, and their software mix.

    ``software_mix`` maps SC name → fraction; fractions must sum to 1. The mix
    is applied at *rack* granularity (racks are homogeneous).
    """

    sku: Sku
    count: int
    software_mix: dict[str, float] = field(default_factory=lambda: {"SC1": 1.0})

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(f"{self.sku.name}: population must be >= 1")
        total = sum(self.software_mix.values())
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"{self.sku.name}: software mix sums to {total}, expected 1.0"
            )
        for sc_name in self.software_mix:
            if sc_name not in SOFTWARE_CONFIGS:
                raise ConfigurationError(f"unknown software configuration {sc_name!r}")


@dataclass(frozen=True, slots=True)
class FleetSpec:
    """Fleet composition plus physical topology parameters."""

    populations: tuple[SkuPopulation, ...]
    machines_per_chassis: int = 12
    chassis_per_rack: int = 2
    racks_per_row: int = 10
    rows_per_subcluster: int = 2

    def __post_init__(self) -> None:
        if not self.populations:
            raise ConfigurationError("fleet spec needs at least one SKU population")
        for n, label in (
            (self.machines_per_chassis, "machines_per_chassis"),
            (self.chassis_per_rack, "chassis_per_rack"),
            (self.racks_per_row, "racks_per_row"),
            (self.rows_per_subcluster, "rows_per_subcluster"),
        ):
            if n < 1:
                raise ConfigurationError(f"{label} must be >= 1")

    @property
    def machines_per_rack(self) -> int:
        return self.machines_per_chassis * self.chassis_per_rack

    @property
    def total_machines(self) -> int:
        return sum(p.count for p in self.populations)


class Cluster:
    """A fleet of machines with topology indexes and config application."""

    def __init__(self, name: str, machines: list[Machine], yarn_config: YarnConfig):
        if not machines:
            raise ConfigurationError("a cluster needs at least one machine")
        self.name = name
        self.machines = machines
        self.yarn_config = yarn_config
        self.apply_yarn_config(yarn_config)

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def machines_by_group(self) -> dict[MachineGroupKey, list[Machine]]:
        """Machines keyed by SC–SKU group (recomputed: SCs can be flipped)."""
        groups: dict[MachineGroupKey, list[Machine]] = {}
        for machine in self.machines:
            groups.setdefault(machine.group_key, []).append(machine)
        return groups

    def group_sizes(self) -> dict[MachineGroupKey, int]:
        """Machine count per group (the `n_k` of the LP in Eq. 7–10)."""
        return {key: len(ms) for key, ms in self.machines_by_group().items()}

    def machines_by_sku(self) -> dict[str, list[Machine]]:
        """Machines keyed by SKU name (Figure 2 left)."""
        result: dict[str, list[Machine]] = {}
        for machine in self.machines:
            result.setdefault(machine.sku.name, []).append(machine)
        return result

    def machines_in_rack(self, rack: int) -> list[Machine]:
        """All machines in one rack, in position order."""
        return [m for m in self.machines if m.rack == rack]

    def machines_in_row(self, row: int) -> list[Machine]:
        """All machines in one row of racks."""
        return [m for m in self.machines if m.row == row]

    def machines_in_subcluster(self, subcluster: int) -> list[Machine]:
        """All machines in one sub-cluster."""
        return [m for m in self.machines if m.subcluster == subcluster]

    def racks(self) -> list[int]:
        """Sorted rack ids."""
        return sorted({m.rack for m in self.machines})

    def rows(self) -> list[int]:
        """Sorted row ids."""
        return sorted({m.row for m in self.machines})

    @property
    def total_cores(self) -> int:
        """Total CPU cores across the fleet."""
        return sum(m.sku.cores for m in self.machines)

    @property
    def total_container_slots(self) -> int:
        """Total `max_running_containers` across the fleet (sellable capacity)."""
        return sum(m.max_running_containers for m in self.machines)

    # ------------------------------------------------------------------
    # Configuration application
    # ------------------------------------------------------------------
    def apply_yarn_config(self, config: YarnConfig) -> None:
        """Apply per-group YARN limits to every machine."""
        self.yarn_config = config
        for machine in self.machines:
            machine.apply_limits(config.for_group(machine.group_key))

    def apply_power_cap(
        self,
        capping_level: float,
        machines: list[Machine] | None = None,
    ) -> None:
        """Cap machines ``capping_level`` below their provisioned power.

        Capping operates at chassis granularity (Section 7.2): if any machine
        of a chassis is selected, the whole chassis is capped.
        """
        selected = self.machines if machines is None else machines
        chassis_ids = {m.chassis for m in selected}
        for machine in self.machines:
            if machine.chassis in chassis_ids:
                machine.cap_watts = cap_watts_for_level(machine.sku, capping_level)

    def clear_power_caps(self, machines: list[Machine] | None = None) -> None:
        """Remove power caps (whole fleet by default)."""
        for machine in machines if machines is not None else self.machines:
            machine.cap_watts = None

    def set_feature(self, enabled: bool, machines: list[Machine] | None = None) -> None:
        """Toggle the processor Feature on capable machines."""
        for machine in machines if machines is not None else self.machines:
            if machine.sku.feature_capable:
                machine.feature_enabled = enabled

    def set_software(self, software: SoftwareConfig, machines: list[Machine]) -> None:
        """Re-image machines with a different software configuration."""
        for machine in machines:
            machine.software = software

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster({self.name!r}, machines={len(self.machines)})"


def default_yarn_config() -> YarnConfig:
    """The manually tuned starting configuration (the paper's baseline).

    Operators have had years to push old generations hard — their container
    limits *overcommit* cores — while newer SKUs run conservatively (Section 2:
    "older-generation machines are substantially more utilized"). These ratios
    produce Figure 2's utilization ordering and leave the headroom Figure 10's
    LP reallocates.
    """
    ratios = {
        "Gen 1.1": 1.30,
        "Gen 2.1": 1.20,
        "Gen 2.2": 1.15,
        "Gen 2.3": 1.10,
        "Gen 3.1": 0.90,
        "Gen 4.1": 0.72,
        "Gen 4.2": 0.68,
    }
    config = YarnConfig()
    for sku in DEFAULT_SKUS:
        limit = max(1, int(round(sku.cores * ratios.get(sku.name, 0.9))))
        for sc_name in SOFTWARE_CONFIGS:
            key = MachineGroupKey(software=sc_name, sku=sku.name)
            config.set_group(key, GroupLimits(max_running_containers=limit))
    return config


def default_fleet_spec(scale: float = 1.0) -> FleetSpec:
    """Benchmark-scale fleet echoing Figure 2's SKU-count shape.

    ``scale`` multiplies per-SKU counts (rounded to whole chassis).
    """
    base_counts = {
        "Gen 1.1": 48,
        "Gen 2.1": 60,
        "Gen 2.2": 84,
        "Gen 2.3": 48,
        "Gen 3.1": 60,
        "Gen 4.1": 84,
        "Gen 4.2": 36,
    }
    mixes = {
        "Gen 1.1": {"SC1": 1.0},
        "Gen 2.1": {"SC1": 1.0},
        "Gen 2.2": {"SC1": 0.75, "SC2": 0.25},
        "Gen 2.3": {"SC1": 0.75, "SC2": 0.25},
        "Gen 3.1": {"SC1": 0.5, "SC2": 0.5},
        "Gen 4.1": {"SC1": 0.25, "SC2": 0.75},
        "Gen 4.2": {"SC2": 1.0},
    }
    populations = []
    for sku in DEFAULT_SKUS:
        count = max(12, int(round(base_counts[sku.name] * scale / 12.0)) * 12)
        populations.append(
            SkuPopulation(sku=sku, count=count, software_mix=mixes[sku.name])
        )
    return FleetSpec(populations=tuple(populations))


def small_fleet_spec() -> FleetSpec:
    """A tiny three-SKU fleet for unit tests (fast to simulate)."""
    return FleetSpec(
        populations=(
            SkuPopulation(sku=sku_by_name("Gen 1.1"), count=12),
            SkuPopulation(
                sku=sku_by_name("Gen 2.2"),
                count=12,
                software_mix={"SC1": 0.5, "SC2": 0.5},
            ),
            SkuPopulation(
                sku=sku_by_name("Gen 4.1"), count=12, software_mix={"SC2": 1.0}
            ),
        ),
        machines_per_chassis=6,
        chassis_per_rack=1,
        racks_per_row=2,
        rows_per_subcluster=1,
    )


def small_application_fleet_spec() -> FleetSpec:
    """A small fleet every Table 3 application can run on.

    Like :func:`small_fleet_spec`, but Gen 4.1 gets four chassis so the
    power-capping hybrid setting can build its four chassis-aligned groups,
    while Gen 1.1's two racks stay homogeneous SC1 for the SC-selection
    ideal setting. Shared by the application-API tests, the application
    suite bench, and the unified-applications example.
    """
    return FleetSpec(
        populations=(
            SkuPopulation(sku=sku_by_name("Gen 1.1"), count=12),
            SkuPopulation(
                sku=sku_by_name("Gen 2.2"),
                count=12,
                software_mix={"SC1": 0.5, "SC2": 0.5},
            ),
            SkuPopulation(
                sku=sku_by_name("Gen 4.1"), count=24, software_mix={"SC2": 1.0}
            ),
        ),
        machines_per_chassis=6,
        chassis_per_rack=1,
        racks_per_row=2,
        rows_per_subcluster=1,
    )


def build_cluster(
    spec: FleetSpec,
    yarn_config: YarnConfig | None = None,
    name: str = "cosmos-sim",
    rng: np.random.Generator | None = None,
) -> Cluster:
    """Materialize a :class:`Cluster` from a fleet spec.

    Machines are laid into racks SKU by SKU (racks homogeneous in SKU and
    software). ``rng`` only shuffles which racks get which software config
    within a SKU; pass None for a deterministic layout.
    """
    config = yarn_config if yarn_config is not None else default_yarn_config()
    machines: list[Machine] = []
    machine_id = 0
    rack_id = 0
    per_rack = spec.machines_per_rack

    for population in spec.populations:
        n_racks = max(1, round(population.count / per_rack))
        # Assign software configs to whole racks according to the mix.
        rack_scs: list[SoftwareConfig] = []
        for sc_name, fraction in sorted(population.software_mix.items()):
            n_sc_racks = int(round(fraction * n_racks))
            rack_scs.extend([SOFTWARE_CONFIGS[sc_name]] * n_sc_racks)
        # Rounding may leave a shortfall/excess; pad with the majority SC.
        majority = SOFTWARE_CONFIGS[
            max(population.software_mix, key=population.software_mix.get)
        ]
        while len(rack_scs) < n_racks:
            rack_scs.append(majority)
        rack_scs = rack_scs[:n_racks]
        if rng is not None:
            rng.shuffle(rack_scs)  # type: ignore[arg-type]

        for local_rack in range(n_racks):
            software = rack_scs[local_rack]
            for slot in range(per_rack):
                chassis = rack_id * spec.chassis_per_rack + slot // spec.machines_per_chassis
                row = rack_id // spec.racks_per_row
                subcluster = row // spec.rows_per_subcluster
                key = MachineGroupKey(software=software.name, sku=population.sku.name)
                machines.append(
                    Machine(
                        machine_id=machine_id,
                        sku=population.sku,
                        software=software,
                        rack=rack_id,
                        chassis=chassis,
                        row=row,
                        subcluster=subcluster,
                        limits=config.for_group(key),
                    )
                )
                machine_id += 1
            rack_id += 1

    return Cluster(name=name, machines=machines, yarn_config=config)
