"""Hardware generations (SKUs) of the simulated fleet.

Cosmos accumulated more than 20 hardware generations over a decade (Section 2
of the paper); each cluster mixes 6–9 of them. We model the seven generations
named in Figure 2 with plausible, internally consistent hardware profiles:
newer generations have more cores, faster cores, more RAM/SSD, and *lower*
contention sensitivity (better memory/IO subsystems).

``speed_factor`` is the per-core speed relative to Gen 4.1; task durations
scale inversely with it. ``contention_beta`` controls how steeply task
execution time grows with machine CPU utilization — older machines degrade
faster under load, which is exactly the asymmetry KEA's LP exploits when it
shifts containers from slow to fast machines (Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Sku", "DEFAULT_SKUS", "sku_by_name"]


@dataclass(frozen=True, slots=True)
class Sku:
    """An immutable hardware-generation profile."""

    name: str
    cores: int
    ram_gb: float
    ssd_gb: float
    hdd_gb: float
    speed_factor: float
    contention_beta: float
    hdd_io_mbps: float
    ssd_io_mbps: float
    power_idle_watts: float
    power_peak_watts: float
    provisioned_power_watts: float
    generation_year: int
    feature_capable: bool

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"{self.name}: cores must be positive")
        if self.speed_factor <= 0:
            raise ValueError(f"{self.name}: speed_factor must be positive")
        if self.power_peak_watts <= self.power_idle_watts:
            raise ValueError(f"{self.name}: peak power must exceed idle power")
        if self.provisioned_power_watts < self.power_peak_watts:
            raise ValueError(
                f"{self.name}: provisioned power below peak power would "
                "throttle permanently; Cosmos provisioned conservatively high"
            )

    @property
    def dynamic_power_watts(self) -> float:
        """Peak minus idle: the utilization-dependent share of power draw."""
        return self.power_peak_watts - self.power_idle_watts


# The seven generations shown in Figure 2 of the paper. Profiles are
# synthetic but monotone in generation: each step adds cores, speed, memory
# and reduces contention sensitivity. Only Gen 4.x processors support the
# power-efficiency "Feature" evaluated in Figure 15.
DEFAULT_SKUS: tuple[Sku, ...] = (
    Sku(
        name="Gen 1.1",
        cores=16,
        ram_gb=64.0,
        ssd_gb=480.0,
        hdd_gb=16_000.0,
        speed_factor=0.45,
        contention_beta=1.10,
        hdd_io_mbps=150.0,
        ssd_io_mbps=400.0,
        power_idle_watts=95.0,
        power_peak_watts=240.0,
        provisioned_power_watts=264.0,
        generation_year=2012,
        feature_capable=False,
    ),
    Sku(
        name="Gen 2.1",
        cores=24,
        ram_gb=96.0,
        ssd_gb=960.0,
        hdd_gb=24_000.0,
        speed_factor=0.60,
        contention_beta=0.90,
        hdd_io_mbps=180.0,
        ssd_io_mbps=520.0,
        power_idle_watts=100.0,
        power_peak_watts=280.0,
        provisioned_power_watts=308.0,
        generation_year=2014,
        feature_capable=False,
    ),
    Sku(
        name="Gen 2.2",
        cores=24,
        ram_gb=128.0,
        ssd_gb=960.0,
        hdd_gb=32_000.0,
        speed_factor=0.65,
        contention_beta=0.85,
        hdd_io_mbps=190.0,
        ssd_io_mbps=540.0,
        power_idle_watts=100.0,
        power_peak_watts=285.0,
        provisioned_power_watts=314.0,
        generation_year=2015,
        feature_capable=False,
    ),
    Sku(
        name="Gen 2.3",
        cores=28,
        ram_gb=128.0,
        ssd_gb=1_200.0,
        hdd_gb=32_000.0,
        speed_factor=0.72,
        contention_beta=0.75,
        hdd_io_mbps=200.0,
        ssd_io_mbps=600.0,
        power_idle_watts=105.0,
        power_peak_watts=300.0,
        provisioned_power_watts=330.0,
        generation_year=2016,
        feature_capable=False,
    ),
    Sku(
        name="Gen 3.1",
        cores=32,
        ram_gb=192.0,
        ssd_gb=1_600.0,
        hdd_gb=40_000.0,
        speed_factor=0.85,
        contention_beta=0.60,
        hdd_io_mbps=220.0,
        ssd_io_mbps=900.0,
        power_idle_watts=110.0,
        power_peak_watts=330.0,
        provisioned_power_watts=363.0,
        generation_year=2018,
        feature_capable=False,
    ),
    Sku(
        name="Gen 4.1",
        cores=48,
        ram_gb=256.0,
        ssd_gb=2_000.0,
        hdd_gb=48_000.0,
        speed_factor=1.00,
        contention_beta=0.42,
        hdd_io_mbps=250.0,
        ssd_io_mbps=1_500.0,
        power_idle_watts=120.0,
        power_peak_watts=400.0,
        provisioned_power_watts=440.0,
        generation_year=2020,
        feature_capable=True,
    ),
    Sku(
        name="Gen 4.2",
        cores=56,
        ram_gb=320.0,
        ssd_gb=2_400.0,
        hdd_gb=56_000.0,
        speed_factor=1.10,
        contention_beta=0.36,
        hdd_io_mbps=260.0,
        ssd_io_mbps=1_800.0,
        power_idle_watts=125.0,
        power_peak_watts=420.0,
        provisioned_power_watts=462.0,
        generation_year=2021,
        feature_capable=True,
    ),
)

_SKU_INDEX = {sku.name: sku for sku in DEFAULT_SKUS}


def sku_by_name(name: str) -> Sku:
    """Look up a default SKU by its generation name (e.g. ``'Gen 4.1'``)."""
    try:
        return _SKU_INDEX[name]
    except KeyError:
        known = ", ".join(sorted(_SKU_INDEX))
        raise KeyError(f"unknown SKU {name!r}; known SKUs: {known}") from None
