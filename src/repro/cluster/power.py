"""Machine power-draw model, capping, and the processor "Feature".

Section 7.2 of the paper experiments with capping machines 10–30% below their
(conservatively high) provisioned power, combined with a processor-level
feature that accelerates processor/graphics performance. We model:

* draw = idle + dynamic · utilization^``UTILIZATION_EXPONENT``, where
  dynamic = peak − idle. The sublinear exponent reflects real servers, whose
  draw rises steeply at low load and flattens toward peak — the reason
  operators discover their provisioned limits are "not cost-effective";
* the Feature improves performance-per-watt: per-core speed × ``FEATURE_SPEED
  _BOOST`` while scaling dynamic power by ``FEATURE_POWER_SCALE`` (< 1);
* capping enforces draw ≤ cap by frequency throttling. With
  voltage/frequency scaling, dynamic power shrinks ≈ quadratically in the
  frequency multiplier ``f``, so the binding cap solves
  ``idle + dynamic · util^exp · f² = cap``.

Mild caps rarely bind at typical utilization (≈ no performance change; a net
*gain* with the Feature on), deep caps bind most of the time (large loss) —
the shape of Figure 15.
"""

from __future__ import annotations

import math

from repro.cluster.sku import Sku

__all__ = [
    "FEATURE_SPEED_BOOST",
    "FEATURE_POWER_SCALE",
    "MIN_THROTTLE",
    "dynamic_power_watts",
    "power_draw_watts",
    "throttle_factor",
    "cap_watts_for_level",
]

FEATURE_SPEED_BOOST = 1.055
"""Per-core speed multiplier when the processor Feature is enabled."""

FEATURE_POWER_SCALE = 0.97
"""Dynamic-power multiplier when the Feature is enabled.

The Feature's perf/watt gain is mostly *performance* (speed boost) rather
than lower draw, so deeply capped machines throttle with or without it —
which is why Figure 15 shows even Feature-enabled machines losing
performance at 25–30% capping."""

MIN_THROTTLE = 0.30
"""Floor on the frequency multiplier; below this the machine is unusable."""

UTILIZATION_EXPONENT = 1.0 / 3.0
"""Exponent of utilization in the dynamic-power term.

Strongly sublinear: real servers draw a large share of peak power already at
moderate load. This is what makes conservatively provisioned power "not
cost-effective" (Section 7.2) — observed draw sits far below provision yet
well above idle, so a 10–15% cap is free while a 25–30% cap bites."""


def dynamic_power_watts(sku: Sku, feature_enabled: bool) -> float:
    """Utilization-dependent power for this SKU, accounting for the Feature."""
    dynamic = sku.dynamic_power_watts
    if feature_enabled:
        dynamic *= FEATURE_POWER_SCALE
    return dynamic


def power_draw_watts(
    sku: Sku,
    utilization: float,
    feature_enabled: bool,
    cap_watts: float | None,
) -> float:
    """Actual draw at ``utilization`` (fraction of cores busy), post-capping."""
    utilization = min(max(utilization, 0.0), 1.0)
    draw = sku.power_idle_watts + dynamic_power_watts(sku, feature_enabled) * (
        utilization**UTILIZATION_EXPONENT
    )
    if cap_watts is not None:
        draw = min(draw, cap_watts)
    return draw


def throttle_factor(
    sku: Sku,
    utilization: float,
    feature_enabled: bool,
    cap_watts: float | None,
) -> float:
    """Frequency multiplier in (0, 1] enforcing the power cap.

    Returns 1.0 when no cap is set or the cap does not bind at this
    utilization. When it binds, solves ``idle + dyn·util·f² = cap`` for ``f``,
    floored at :data:`MIN_THROTTLE`.
    """
    if cap_watts is None:
        return 1.0
    utilization = min(max(utilization, 0.0), 1.0)
    if utilization <= 0.0:
        return 1.0
    dynamic = dynamic_power_watts(sku, feature_enabled) * (
        utilization**UTILIZATION_EXPONENT
    )
    uncapped = sku.power_idle_watts + dynamic
    if uncapped <= cap_watts:
        return 1.0
    headroom = cap_watts - sku.power_idle_watts
    if headroom <= 0.0:
        return MIN_THROTTLE
    factor = math.sqrt(headroom / dynamic)
    return max(MIN_THROTTLE, min(1.0, factor))


def cap_watts_for_level(sku: Sku, capping_level: float) -> float:
    """Cap in watts for a capping level expressed as a fraction below provision.

    ``capping_level=0.10`` means "cap 10% below the original provisioned
    power", matching the x-axis of Figure 15.
    """
    if not 0.0 <= capping_level < 1.0:
        raise ValueError(f"capping_level must be in [0, 1), got {capping_level}")
    return sku.provisioned_power_watts * (1.0 - capping_level)
