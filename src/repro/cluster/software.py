"""Software configurations (SCs) and machine-group keys.

Cosmos machines run one of two main software configurations (Section 7.1):

* **SC1** maps the local temp store to HDD — cheap, but task I/O contends on
  the spinning disk, creating a write-latency bottleneck under load.
* **SC2** maps the local temp store to SSD — removes the HDD bottleneck at
  the cost of SSD wear/capacity.

KEA models everything at the *machine group* level, where a group is one
SC–SKU combination (Level V abstraction, Figure 4). :class:`MachineGroupKey`
is the canonical identity of such a group; its ``label`` matches the labels
used in the paper's figures (e.g. ``'SC2_Gen 4.1'``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SoftwareConfig", "SC1", "SC2", "SOFTWARE_CONFIGS", "MachineGroupKey"]


@dataclass(frozen=True, slots=True)
class SoftwareConfig:
    """A software configuration: logical-drive to physical-media mapping.

    ``io_contention_coeff`` scales how much concurrent I/O inflates task
    durations; the HDD temp store (SC1) is markedly more sensitive.
    """

    name: str
    temp_store_on_ssd: bool
    io_contention_coeff: float
    description: str

    def __post_init__(self) -> None:
        if self.io_contention_coeff < 0:
            raise ValueError("io_contention_coeff must be non-negative")


SC1 = SoftwareConfig(
    name="SC1",
    temp_store_on_ssd=False,
    io_contention_coeff=0.30,
    description="local temp store on HDD (I/O-contended under load)",
)

SC2 = SoftwareConfig(
    name="SC2",
    temp_store_on_ssd=True,
    io_contention_coeff=0.08,
    description="local temp store on SSD (relieves HDD write bottleneck)",
)

SOFTWARE_CONFIGS: dict[str, SoftwareConfig] = {"SC1": SC1, "SC2": SC2}


@dataclass(frozen=True, slots=True, order=True)
class MachineGroupKey:
    """Identity of a machine group: one software–hardware (SC–SKU) combination."""

    software: str
    sku: str

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``'SC2_Gen 4.1'``."""
        return f"{self.software}_{self.sku}"

    @classmethod
    def from_label(cls, label: str) -> "MachineGroupKey":
        """Parse a ``'SC_SKU'`` label back into a key."""
        software, sep, sku = label.partition("_")
        if not sep or not software or not sku:
            raise ValueError(f"malformed machine-group label {label!r}")
        return cls(software=software, sku=sku)
