"""Cluster-wide YARN configuration: the knobs KEA tunes.

The headline application (Section 5.2) tunes ``max_num_running_containers``
per machine group; the queue-tuning discussion (Section 5.3) tunes the
maximum queue length the same way. :class:`YarnConfig` is an immutable-ish
mapping from :class:`~repro.cluster.software.MachineGroupKey` to those two
limits, with helpers for the conservative "change by at most ±1" rollouts the
paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.software import MachineGroupKey
from repro.utils.errors import ConfigurationError

__all__ = ["GroupLimits", "YarnConfig"]


@dataclass(frozen=True, slots=True)
class GroupLimits:
    """YARN limits for one machine group."""

    max_running_containers: int
    max_queued_containers: int = 1_000_000  # effectively unbounded by default

    def __post_init__(self) -> None:
        if self.max_running_containers < 1:
            raise ConfigurationError(
                f"max_running_containers must be >= 1, got {self.max_running_containers}"
            )
        if self.max_queued_containers < 0:
            raise ConfigurationError(
                f"max_queued_containers must be >= 0, got {self.max_queued_containers}"
            )


@dataclass
class YarnConfig:
    """Per-group YARN limits for a whole cluster.

    The mapping is keyed by :class:`MachineGroupKey`. Unknown groups fall back
    to ``default_limits`` so that freshly added SKUs always have *some*
    (conservative) configuration, mirroring how never-tested-before SKUs enter
    Cosmos sub-optimally tuned (Section 2).
    """

    limits: dict[MachineGroupKey, GroupLimits] = field(default_factory=dict)
    default_limits: GroupLimits = field(
        default_factory=lambda: GroupLimits(max_running_containers=16)
    )

    def for_group(self, key: MachineGroupKey) -> GroupLimits:
        """Limits for ``key``, falling back to the default."""
        return self.limits.get(key, self.default_limits)

    def set_group(self, key: MachineGroupKey, limits: GroupLimits) -> None:
        """Set the limits for one group (in place)."""
        self.limits[key] = limits

    def copy(self) -> "YarnConfig":
        """A deep-enough copy: group limits are immutable, the dict is not."""
        return YarnConfig(limits=dict(self.limits), default_limits=self.default_limits)

    def with_container_delta(
        self, deltas: dict[MachineGroupKey, int], min_containers: int = 1
    ) -> "YarnConfig":
        """Return a new config with per-group container deltas applied.

        This is the paper's conservative rollout primitive: production changes
        modify the maximum running containers by ±1 (later ±2) per group.
        """
        new = self.copy()
        for key, delta in deltas.items():
            current = new.for_group(key)
            proposed = current.max_running_containers + int(delta)
            if proposed < min_containers:
                raise ConfigurationError(
                    f"delta {delta:+d} for {key.label} would drop "
                    f"max_running_containers below {min_containers}"
                )
            new.limits[key] = GroupLimits(
                max_running_containers=proposed,
                max_queued_containers=current.max_queued_containers,
            )
        return new

    def container_limits_by_label(self) -> dict[str, int]:
        """Convenience view: ``{'SC1_Gen 1.1': 18, ...}``."""
        return {
            key.label: limits.max_running_containers
            for key, limits in sorted(self.limits.items())
        }
