"""YARN-like resource manager: uniform-random container placement + queueing.

The paper's Level IV abstraction rests on an observed scheduler property:
"the scheduler randomizes tasks uniformly across nodes" (Figure 6). This
scheduler reproduces that contract:

* A ready task is placed on a machine drawn **uniformly at random among
  machines with a free container slot** (free slot = running containers below
  the group's ``max_num_running_containers``).
* When no machine has a free slot, the container is queued on a random
  machine with queue space (Section 5.3: "low priority containers will be
  queued on each machine when all machines in the cluster reach the maximum
  number of running containers"). Faster machines free slots more often and
  therefore drain their queues faster — the asymmetry behind Figure 12.

Both the free-slot set and the queue-space set use a swap-pop list +
position map so placement — started *or* queued — is O(1) even with
hundreds of thousands of placements per simulated day and fleets of
thousands of machines.
"""

from __future__ import annotations

import random

from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine
from repro.utils.errors import SchedulingError
from repro.workload.task import Task

__all__ = ["YarnScheduler", "PlacementResult"]


class PlacementResult:
    """Outcome of one placement attempt."""

    __slots__ = ("machine", "started", "queued")

    def __init__(self, machine: Machine, started: bool, queued: bool):
        self.machine = machine
        self.started = started
        self.queued = queued


class YarnScheduler:
    """Uniform-random placement with per-machine low-priority queues."""

    # How many random probes to try before the queue-space-set fallback.
    _QUEUE_PROBES = 8

    def __init__(self, cluster: Cluster, seed: int = 0):
        self.cluster = cluster
        self._rng = random.Random(seed)
        # The queue-space fallback draws from its own stream: the legacy
        # fallback was a deterministic scan that consumed nothing from the
        # placement stream, so the O(1) replacement must not perturb it
        # either — every simulation keeps its exact placement sequence.
        self._fallback_rng = random.Random(seed ^ 0x5EED5EED)
        self._available: list[Machine] = []
        self._pos: dict[int, int] = {}
        self._queue_space: list[Machine] = []
        self._queue_pos: dict[int, int] = {}
        self.placements = 0
        self.queued_placements = 0
        self.rebuild()

    # ------------------------------------------------------------------
    # Free-slot / queue-space set maintenance
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Recompute both membership sets from machine state (after config changes)."""
        self._available = [m for m in self.cluster.machines if m.has_free_slot]
        self._pos = {m.machine_id: i for i, m in enumerate(self._available)}
        self._queue_space = [m for m in self.cluster.machines if m.has_queue_space]
        self._queue_pos = {m.machine_id: i for i, m in enumerate(self._queue_space)}

    def _add_available(self, machine: Machine) -> None:
        if machine.machine_id in self._pos:
            return
        self._pos[machine.machine_id] = len(self._available)
        self._available.append(machine)

    def _remove_available(self, machine: Machine) -> None:
        index = self._pos.pop(machine.machine_id, None)
        if index is None:
            return
        last = self._available.pop()
        if last.machine_id != machine.machine_id:
            self._available[index] = last
            self._pos[last.machine_id] = index

    def _add_queue_space(self, machine: Machine) -> None:
        if machine.machine_id in self._queue_pos:
            return
        self._queue_pos[machine.machine_id] = len(self._queue_space)
        self._queue_space.append(machine)

    def _remove_queue_space(self, machine: Machine) -> None:
        index = self._queue_pos.pop(machine.machine_id, None)
        if index is None:
            return
        last = self._queue_space.pop()
        if last.machine_id != machine.machine_id:
            self._queue_space[index] = last
            self._queue_pos[last.machine_id] = index

    def refresh_machine(self, machine: Machine) -> None:
        """Re-evaluate one machine's set memberships (after limit/queue change)."""
        if machine.has_free_slot:
            self._add_available(machine)
        else:
            self._remove_available(machine)
        if machine.has_queue_space:
            self._add_queue_space(machine)
        else:
            self._remove_queue_space(machine)

    @property
    def free_slot_machines(self) -> int:
        """How many machines currently have at least one free slot."""
        return len(self._available)

    @property
    def queue_space_machines(self) -> int:
        """How many machines currently have container-queue space."""
        return len(self._queue_space)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(self, task: Task, now: float) -> PlacementResult:
        """Place ``task``: start it on a random free machine, else queue it."""
        self.placements += 1
        if self._available:
            machine = self._available[self._rng.randrange(len(self._available))]
            return PlacementResult(machine=machine, started=True, queued=False)
        machine = self._pick_queue_machine()
        machine.enqueue(now, task)
        if not machine.has_queue_space:
            self._remove_queue_space(machine)
        self.queued_placements += 1
        return PlacementResult(machine=machine, started=False, queued=True)

    def _pick_queue_machine(self) -> Machine:
        machines = self.cluster.machines
        for _ in range(self._QUEUE_PROBES):
            candidate = machines[self._rng.randrange(len(machines))]
            if candidate.has_queue_space:
                return candidate
        # Queues are nearly everywhere full: pick uniformly among the
        # machines that still have space — O(1) via the queue-space set,
        # where the old fallback was an O(n) min() scan per queued
        # placement under overload.
        if not self._queue_space:
            raise SchedulingError(
                "every machine's container queue is full; the cluster is "
                "overloaded beyond its configured queueing capacity"
            )
        return self._queue_space[
            self._fallback_rng.randrange(len(self._queue_space))
        ]

    def note_started(self, machine: Machine) -> None:
        """Bookkeeping after a container actually starts on ``machine``."""
        if not machine.has_free_slot:
            self._remove_available(machine)
