"""Cluster substrate: the simulated Cosmos-like fleet.

This package is the "system under tuning". It provides hardware generations
(:mod:`~repro.cluster.sku`), software configurations
(:mod:`~repro.cluster.software`), machines with power/contention models
(:mod:`~repro.cluster.machine`), the YARN-like scheduler
(:mod:`~repro.cluster.scheduler`), and the event-driven simulator
(:mod:`~repro.cluster.simulator`).
"""

from repro.cluster.cluster import (
    Cluster,
    FleetSpec,
    SkuPopulation,
    build_cluster,
    default_fleet_spec,
    default_yarn_config,
    small_application_fleet_spec,
    small_fleet_spec,
)
from repro.cluster.config import GroupLimits, YarnConfig
from repro.cluster.machine import Machine
from repro.cluster.power import cap_watts_for_level, power_draw_watts, throttle_factor
from repro.cluster.scheduler import YarnScheduler
from repro.cluster.simulator import (
    ClusterSimulator,
    ObservationSpec,
    SimulationConfig,
    SimulationResult,
)
from repro.cluster.sku import DEFAULT_SKUS, Sku, sku_by_name
from repro.cluster.software import SC1, SC2, MachineGroupKey, SoftwareConfig

__all__ = [
    "Cluster",
    "FleetSpec",
    "SkuPopulation",
    "build_cluster",
    "default_fleet_spec",
    "default_yarn_config",
    "small_application_fleet_spec",
    "small_fleet_spec",
    "GroupLimits",
    "YarnConfig",
    "Machine",
    "cap_watts_for_level",
    "power_draw_watts",
    "throttle_factor",
    "YarnScheduler",
    "ClusterSimulator",
    "ObservationSpec",
    "SimulationConfig",
    "SimulationResult",
    "DEFAULT_SKUS",
    "Sku",
    "sku_by_name",
    "SC1",
    "SC2",
    "MachineGroupKey",
    "SoftwareConfig",
]
