"""Event-driven cluster simulator.

Drives a :class:`~repro.cluster.cluster.Cluster` under a
:class:`~repro.workload.generator.Workload` and produces exactly the
telemetry the paper's Performance Monitor exposes: machine-hour records, job
records, an (optionally sampled) task log, and fine-grained resource samples.

Event kinds, in priority order at equal timestamps:

* ``HOUR`` — telemetry flush for every machine. Runs first so a config
  change scheduled exactly at an hour boundary does not leak into the
  previous hour's records.
* ``ACTION`` — a scheduled callback (flighting deployments, config changes,
  power-cap changes). Runs before arrivals/finishes of the same instant.
* ``ARRIVAL`` — a job arrives; its first stage's tasks are placed.
* ``FINISH`` — a task finishes; stage/job bookkeeping, queue draining.
* ``RETRY`` — a placement deferred by cluster-wide backpressure is retried.
* ``CRASH`` / ``RECOVER`` / ``SLOW`` — fault-plane events (machine dies,
  comes back, or becomes a straggler). Scheduled only by explicit fault
  injection (:mod:`repro.faults`), so a fault-free run never dispatches
  them — the no-fault hot loop is bit-identical with the plane compiled in.

When every machine's container queue is full (possible once per-group
``max_queued_containers`` limits are tuned down), placement exercises
backpressure instead of failing: the task is deferred and retried after
``SimulationConfig.placement_retry_s`` — the RM-level behaviour of a real
YARN cluster under overload.

The simulator is deterministic for a given seed (all randomness flows through
named :class:`~repro.utils.rng.RngStreams`).
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections.abc import Callable
from dataclasses import dataclass, field
from time import perf_counter

from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine
from repro.cluster.scheduler import YarnScheduler
from repro.obs.profile import SimulatorProfile
from repro.obs.trace import current_tracer
from repro.telemetry.frame import MachineHourFrame
from repro.telemetry.records import (
    JobRecord,
    MachineHourRecord,
    ResourceSample,
    TaskLog,
)
from repro.utils.errors import SchedulingError
from repro.utils.rng import RngStreams, derive_seed
from repro.utils.units import SECONDS_PER_HOUR
from repro.workload.generator import Workload
from repro.workload.job import JobRuntime
from repro.workload.task import Task, TaskId, task_run_scope

__all__ = [
    "SimulationConfig",
    "ObservationSpec",
    "SimulationResult",
    "ClusterSimulator",
]

_HOUR, _ACTION, _ARRIVAL, _FINISH, _SAMPLE, _RETRY = 0, 1, 2, 3, 4, 5
# Fault-plane kinds append after the original six: renumbering the existing
# kinds would change equal-timestamp ordering and break bit-identity of
# fault-free runs against earlier builds.
_CRASH, _RECOVER, _SLOW = 6, 7, 8


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Knobs controlling what the simulation records.

    ``task_log_sample_rate`` of 0 disables the per-task log entirely;
    1.0 logs every task (needed for critical-path analyses).
    ``resource_sample_period_s`` > 0 samples (cores, RAM, SSD) usage of up to
    ``resource_sample_machines`` machines at that period (Figure 13 data).
    ``placement_retry_s`` is the backpressure delay before a placement that
    found every container queue full is retried.
    """

    task_log_sample_rate: float = 0.0
    resource_sample_period_s: float = 0.0
    resource_sample_machines: int = 0
    resource_sample_sku: str | None = None
    placement_retry_s: float = 60.0


@dataclass(frozen=True, slots=True)
class ObservationSpec:
    """What one observation window must *record* for its consumer.

    Applications have different telemetry needs — SKU design wants
    fine-grained resource samples (Figure 13), critical-path analyses want a
    dense task log, rollout evaluations want benchmark jobs on a cadence.
    An ``ObservationSpec`` is the declarative, picklable statement of those
    needs: it rides on a :class:`~repro.service.pool.SimulationRequest`
    through pool workers and into the cache key, so an application's
    observation plane fans out and memoizes like every other simulation
    (no side-channel re-observation).

    ``benchmark_period_hours`` of None defers to the caller's default (a
    campaign scenario's cadence, or no benchmarks for a plain observe).
    """

    task_log_sample_rate: float = 0.0
    resource_sample_period_s: float = 0.0
    resource_sample_machines: int = 0
    resource_sample_sku: str | None = None
    benchmark_period_hours: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.task_log_sample_rate <= 1.0:
            raise ValueError("task_log_sample_rate must be in [0, 1]")
        if self.resource_sample_period_s < 0 or self.resource_sample_machines < 0:
            raise ValueError("resource sampling knobs must be non-negative")
        if self.benchmark_period_hours is not None and self.benchmark_period_hours < 0:
            raise ValueError("benchmark_period_hours must be non-negative")

    @property
    def is_default(self) -> bool:
        """True when the spec asks for nothing beyond baseline telemetry."""
        return self == ObservationSpec()

    def to_sim_config(self, base: SimulationConfig | None = None) -> SimulationConfig:
        """The :class:`SimulationConfig` realizing this spec.

        ``base`` supplies non-telemetry knobs (backpressure retry delay) to
        preserve; telemetry knobs always come from the spec itself.
        """
        base = base if base is not None else SimulationConfig()
        return SimulationConfig(
            task_log_sample_rate=self.task_log_sample_rate,
            resource_sample_period_s=self.resource_sample_period_s,
            resource_sample_machines=self.resource_sample_machines,
            resource_sample_sku=self.resource_sample_sku,
            placement_retry_s=base.placement_retry_s,
        )

    def fingerprint(self) -> str:
        """Stable cache-key material (two equal specs fingerprint equally)."""
        return (
            f"log={self.task_log_sample_rate}"
            f"|rs={self.resource_sample_period_s}"
            f"/{self.resource_sample_machines}"
            f"/{self.resource_sample_sku or '-'}"
            f"|bench={self.benchmark_period_hours}"
        )


@dataclass
class SimulationResult:
    """Everything a simulation run produced.

    Machine-hour telemetry lives in a columnar
    :class:`~repro.telemetry.frame.MachineHourFrame`; :attr:`records` stays
    available as the frame's lazy, cached record materialization so
    record-level consumers keep working unchanged.
    """

    frame: MachineHourFrame = field(default_factory=MachineHourFrame)
    jobs: list[JobRecord] = field(default_factory=list)
    task_log: TaskLog = field(default_factory=TaskLog)
    resource_samples: list[ResourceSample] = field(default_factory=list)
    jobs_submitted: int = 0
    jobs_completed: int = 0
    tasks_started: int = 0
    tasks_queued: int = 0
    tasks_deferred: int = 0  # tasks hit by cluster-wide backpressure (≥1 time)
    # Fault-plane counters (all zero on fault-free runs).
    machines_crashed: int = 0
    machines_recovered: int = 0
    tasks_requeued: int = 0  # tasks displaced by a crash (running or queued)
    duration_hours: float = 0.0
    # Wall-clock attribution of the run itself (placement / event processing
    # / telemetry rollup). Out-of-band: never read by simulation logic.
    profile: SimulatorProfile = field(default_factory=SimulatorProfile)

    @property
    def records(self) -> list[MachineHourRecord]:
        """Record-level view of the telemetry frame (lazy, cached)."""
        return self.frame.to_records()

    @property
    def tasks_per_day(self) -> float:
        """Realized task throughput (Table 1 scale metric)."""
        if self.duration_hours <= 0:
            return 0.0
        return self.tasks_started * 24.0 / self.duration_hours

    @property
    def jobs_per_day(self) -> float:
        """Realized job throughput (Table 1 scale metric)."""
        if self.duration_hours <= 0:
            return 0.0
        return self.jobs_submitted * 24.0 / self.duration_hours


class _TaskRun:
    """Payload of a FINISH event."""

    __slots__ = ("machine", "job", "task", "duration", "log_row", "cancelled")

    def __init__(self, machine: Machine, job: JobRuntime, task: Task,
                 duration: float, log_row: int):
        self.machine = machine
        self.job = job
        self.task = task
        self.duration = duration
        self.log_row = log_row
        # Set when the hosting machine crashes mid-execution: the FINISH
        # event stays in the heap (removal would be O(n log n)) but becomes
        # a no-op, and the task is requeued elsewhere.
        self.cancelled = False


class ClusterSimulator:
    """Runs one workload against one cluster, collecting telemetry."""

    def __init__(
        self,
        cluster: Cluster,
        workload: Workload,
        streams: RngStreams | None = None,
        config: SimulationConfig | None = None,
        run_token: str | None = None,
        profile: bool | None = None,
    ):
        self.cluster = cluster
        self.workload = workload
        # Wall-clock profiling gate. None means auto: profile exactly when a
        # recording tracer is active at run start, so traced runs keep full
        # phase attribution while plain runs pay zero perf_counter() calls.
        self._profile = profile
        self._profiling = bool(profile)
        self.streams = streams if streams is not None else RngStreams(0)
        self.config = config if config is not None else SimulationConfig()
        # The run-scoped task-identity token. Derived from the stream seed
        # (itself a function of the caller's seed/workload tag), so the same
        # simulation allocates the same task ids in any process, while two
        # different runs — in one process or many — can never collide.
        self.run_token = (
            run_token
            if run_token is not None
            else f"run-{derive_seed(self.streams.seed, 'task-run-token'):016x}"
        )
        self.scheduler = YarnScheduler(
            cluster, seed=self.streams.get("scheduler-seed").integers(0, 2**31).item()
        )
        self.result = SimulationResult(task_log=TaskLog(self.config.task_log_sample_rate))
        self.now = 0.0
        self._heap: list[tuple[float, int, int, object]] = []
        self._seq = itertools.count()
        self._job_ids = itertools.count()
        self._stage_rng = self.streams.get("stages")
        self._log_rng = random.Random(
            self.streams.get("tasklog-seed").integers(0, 2**31).item()
        )
        self._sampled_machines: list[Machine] = []
        self._pending_actions: list[tuple[float, Callable[[ClusterSimulator], None]]] = []
        # Maps task.task_id -> JobRuntime for tasks sitting in machine
        # queues. Keyed by the run-scoped task id, not id(task): CPython
        # reuses object ids after garbage collection, so an id() key could
        # silently alias a finished task with a freshly allocated one — and
        # the run token keeps identities distinct across runs and worker
        # processes.
        self._job_of_queued: dict[TaskId, JobRuntime] = {}
        # Queue wait accrued on a crashed machine, keyed by task id, joined
        # into the task's next placement so fault scenarios report
        # end-to-end wait rather than per-placement wait. Empty on
        # fault-free runs — _place only pays a falsy-dict check.
        self._carried_wait: dict[TaskId, float] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def schedule_action(
        self, time: float, action: Callable[["ClusterSimulator"], None]
    ) -> None:
        """Register a callback to run at simulation time ``time`` (seconds).

        Must be called before :meth:`run`. Used by flighting/deployment and
        experiment designs to change configuration mid-run.
        """
        self._pending_actions.append((time, action))

    def schedule_crash(self, time: float, machine: Machine) -> None:
        """Schedule ``machine`` to crash at simulation time ``time`` (seconds).

        Running containers are requeued through the normal placement path
        (hitting backpressure if the rest of the fleet is full); queued
        containers carry their accrued wait to the next placement. Crashing
        an already-faulted machine is a no-op.
        """
        self._push(time, _CRASH, machine)

    def schedule_recover(self, time: float, machine: Machine) -> None:
        """Schedule a crashed ``machine`` to rejoin the fleet at ``time``."""
        self._push(time, _RECOVER, machine)

    def schedule_slowdown(
        self, time: float, machine: Machine, factor: float
    ) -> None:
        """Scale ``machine``'s task durations by ``factor`` from ``time`` on.

        ``factor`` > 1 makes a straggler; 1.0 restores nominal speed. Only
        tasks *started* after the event are affected (in-flight durations
        were fixed at start, like a real per-task placement decision).
        """
        if factor <= 0.0:
            raise ValueError(f"slowdown factor must be positive, got {factor}")
        self._push(time, _SLOW, (machine, factor))

    def apply_yarn_config(self, config) -> None:
        """Apply a new YARN config now and refresh scheduler bookkeeping."""
        self.cluster.apply_yarn_config(config)
        for machine in self.cluster.machines:
            machine.advance(self.now)
            self._drain_queue(machine)
        self.scheduler.rebuild()

    def run(self, duration_hours: float) -> SimulationResult:
        """Simulate ``duration_hours`` hours and return the collected telemetry."""
        if duration_hours <= 0:
            raise ValueError("duration_hours must be positive")
        with task_run_scope(self.run_token):
            return self._run(duration_hours)

    def _run(self, duration_hours: float) -> SimulationResult:
        horizon = duration_hours * SECONDS_PER_HOUR
        self._push(0.0, _HOUR, 0)
        for time, action in self._pending_actions:
            if 0.0 <= time < horizon:
                self._push(time, _ACTION, action)
        self._pending_actions.clear()
        self._setup_resource_sampling(horizon)

        arrivals = self.workload.arrivals
        arrival_index = 0
        if arrivals and arrivals[0].time < horizon:
            self._push(arrivals[0].time, _ARRIVAL, arrivals[0].template)

        heap = self._heap
        profile = self.result.profile
        profiling = (
            current_tracer().enabled if self._profile is None else self._profile
        )
        self._profiling = profiling
        while heap:
            time, kind, _seq, payload = heapq.heappop(heap)
            if time > horizon:
                break
            self.now = time
            # repro: allow[REP001] obs-gated profiling: attribution only, never enters simulation state
            tick = perf_counter() if profiling else 0.0
            if kind == _FINISH:
                self._handle_finish(payload)
            elif kind == _ARRIVAL:
                self._handle_arrival(payload)
                arrival_index += 1
                if arrival_index < len(arrivals) and arrivals[arrival_index].time < horizon:
                    self._push(
                        arrivals[arrival_index].time, _ARRIVAL,
                        arrivals[arrival_index].template,
                    )
            elif kind == _HOUR:
                hour = payload
                if hour > 0:
                    self._flush_hour(hour - 1)
                if hour * SECONDS_PER_HOUR < horizon:
                    self._push((hour + 1) * SECONDS_PER_HOUR, _HOUR, hour + 1)
            elif kind == _ACTION:
                payload(self)
            elif kind == _SAMPLE:
                self._handle_sample(payload, horizon)
            elif kind == _RETRY:
                job, task = payload
                self._place(job, task, retried=True)
            elif kind == _CRASH:
                self._handle_crash(payload)
            elif kind == _RECOVER:
                self._handle_recover(payload)
            else:  # _SLOW
                machine, factor = payload
                machine.slowdown = factor
            # Attribute the dispatch we just ran: hourly flushes and resource
            # samples are telemetry rollup; everything else (arrivals,
            # finishes, actions, retries) is event processing. Placement time
            # nests inside event dispatches and is carved out by
            # SimulatorProfile.as_phases().
            if profiling:
                if kind == _HOUR or kind == _SAMPLE:
                    # repro: allow[REP001] obs-gated profiling: attribution only, never enters simulation state
                    profile.telemetry_seconds += perf_counter() - tick
                    profile.telemetry_events += 1
                else:
                    # repro: allow[REP001] obs-gated profiling: attribution only, never enters simulation state
                    profile.event_seconds += perf_counter() - tick
                    profile.events += 1

        self.now = horizon
        self.result.duration_hours = duration_hours
        return self.result

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _push(self, time: float, kind: int, payload: object) -> None:
        heapq.heappush(self._heap, (time, kind, next(self._seq), payload))

    def _handle_arrival(self, template) -> None:
        job = JobRuntime(
            job_id=next(self._job_ids),
            template=template,
            submit_time=self.now,
            rng=self._stage_rng,
        )
        self.result.jobs_submitted += 1
        self._start_stage(job)

    def _start_stage(self, job: JobRuntime) -> None:
        tasks = job.start_next_stage(self._stage_rng)
        for task in tasks:
            self._place(job, task)

    def _place(self, job: JobRuntime, task: Task, retried: bool = False) -> None:
        profiling = self._profiling
        if profiling:
            profile = self.result.profile
            # repro: allow[REP001] obs-gated profiling: attribution only, never enters simulation state
            tick = perf_counter()
        try:
            placement = self.scheduler.place(task, self.now)
        except SchedulingError:
            if profiling:
                # repro: allow[REP001] obs-gated profiling: attribution only, never enters simulation state
                profile.placement_seconds += perf_counter() - tick
                profile.placements += 1
            # Every queue is full: back off and retry instead of failing —
            # finite tuned queue limits must be simulable under overload.
            # Each task counts once, however many retries it takes.
            if not retried:
                self.result.tasks_deferred += 1
            self._push(self.now + self.config.placement_retry_s, _RETRY, (job, task))
            return
        if profiling:
            # repro: allow[REP001] obs-gated profiling: attribution only, never enters simulation state
            profile.placement_seconds += perf_counter() - tick
            profile.placements += 1
        if placement.started:
            wait = 0.0
            if self._carried_wait:
                wait = self._carried_wait.pop(task.task_id, 0.0)
                if wait > 0.0:
                    # The wait was served on a machine that died; sample it
                    # on the machine that finally runs the task so frame
                    # telemetry sees the end-to-end figure.
                    placement.machine.note_carried_wait(wait)
            self._start_on(placement.machine, job, task, queue_wait=wait)
            self.scheduler.note_started(placement.machine)
        else:
            self.result.tasks_queued += 1
            if self._carried_wait:
                carried = self._carried_wait.pop(task.task_id, 0.0)
                if carried > 0.0:
                    # Backdate the enqueue so the eventual dequeue reports
                    # the joined cross-machine wait.
                    placement.machine.queue[-1].enqueue_time -= carried
            self._job_of_queued[task.task_id] = job

    def _start_on(
        self, machine: Machine, job: JobRuntime, task: Task, queue_wait: float
    ) -> None:
        duration = machine.start_task(
            self.now,
            cpu_fraction=task.cpu_fraction,
            ram_gb=task.ram_gb,
            ssd_gb=task.ssd_gb,
            data_bytes=task.data_bytes,
            work_seconds=task.work_seconds,
        )
        self.result.tasks_started += 1
        log_row = -1
        rate = self.result.task_log.sample_rate
        if rate > 0.0 and (rate >= 1.0 or self._log_rng.random() < rate):
            log_row = self.result.task_log.append(
                sku=machine.sku.name,
                software=machine.software.name,
                rack=machine.rack,
                op=task.operator,
                duration=duration,
                data_bytes=task.data_bytes,
                cpu_seconds=task.cpu_fraction * duration,
                start=self.now,
                queue_wait=queue_wait,
                job_template=job.template.name,
            )
        self._push(self.now + duration, _FINISH, _TaskRun(machine, job, task, duration, log_row))

    def _handle_finish(self, run: _TaskRun) -> None:
        if run.cancelled:
            # The hosting machine crashed while this task ran; the task was
            # requeued and will produce a fresh FINISH from its new machine.
            return
        machine, job, task = run.machine, run.job, run.task
        machine.finish_task(
            self.now,
            cpu_fraction=task.cpu_fraction,
            ram_gb=task.ram_gb,
            ssd_gb=task.ssd_gb,
            data_bytes=task.data_bytes,
            duration=run.duration,
        )
        stage_done = job.on_task_finish(self.now, run.duration, run.log_row)
        if stage_done:
            if job.last_finish_log_row >= 0:
                self.result.task_log.mark_critical(job.last_finish_log_row)
            if job.has_next_stage:
                self._start_stage(job)
            else:
                job.finished = True
                self.result.jobs_completed += 1
                self.result.jobs.append(
                    JobRecord(
                        job_id=job.job_id,
                        template=job.template.name,
                        submit_time=job.submit_time,
                        finish_time=self.now,
                        n_tasks=job.n_tasks_total,
                        total_task_seconds=job.total_task_seconds,
                        is_benchmark=job.template.is_benchmark,
                    )
                )
        self._drain_queue(machine)
        self.scheduler.refresh_machine(machine)

    def _drain_queue(self, machine: Machine) -> None:
        while machine.has_free_slot and machine.queue:
            popped = machine.dequeue(self.now)
            if popped is None:  # pragma: no cover - guarded by loop condition
                break
            task, wait = popped
            job = self._job_of_queued.pop(task.task_id)
            self._start_on(machine, job, task, queue_wait=wait)

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def _handle_crash(self, machine: Machine) -> None:
        if machine.faulted:
            return
        self.result.machines_crashed += 1
        machine.advance(self.now)
        # Displaced work, in deterministic order: queued tasks first (they
        # carry their accrued wait), then running tasks from the heap scan.
        displaced: list[tuple[JobRuntime, Task, float]] = []
        while machine.queue:
            queued = machine.queue.popleft()
            task = queued.task
            job = self._job_of_queued.pop(task.task_id)
            displaced.append((job, task, self.now - queued.enqueue_time))
        # O(heap) scan per crash: crashes are rare events, and lazily
        # cancelling beats restructuring the heap on the hot path.
        for item in self._heap:
            if item[1] == _FINISH:
                run = item[3]
                if run.machine is machine and not run.cancelled:
                    run.cancelled = True
                    displaced.append((run.job, run.task, 0.0))
        machine.crash(self.now)
        # Faulted machines report no free slot / queue space, so the
        # refresh evicts the machine from both scheduler sets.
        self.scheduler.refresh_machine(machine)
        for job, task, waited in displaced:
            if waited > 0.0:
                self._carried_wait[task.task_id] = waited
            self.result.tasks_requeued += 1
            self._place(job, task)

    def _handle_recover(self, machine: Machine) -> None:
        if not machine.faulted:
            return
        self.result.machines_recovered += 1
        machine.recover(self.now)
        # Readmit the machine to the scheduler's sets and let it pick up
        # queued work immediately (its queue is empty post-crash, so this
        # only flips set membership).
        self.scheduler.refresh_machine(machine)

    def _flush_hour(self, hour: int) -> None:
        end = (hour + 1) * SECONDS_PER_HOUR
        frame = self.result.frame
        for machine in self.cluster.machines:
            machine.flush_hour_into(end, hour, frame)

    # ------------------------------------------------------------------
    # Resource sampling (Figure 13 data)
    # ------------------------------------------------------------------
    def _setup_resource_sampling(self, horizon: float) -> None:
        cfg = self.config
        if cfg.resource_sample_period_s <= 0 or cfg.resource_sample_machines <= 0:
            return
        candidates = [
            m
            for m in self.cluster.machines
            if cfg.resource_sample_sku is None or m.sku.name == cfg.resource_sample_sku
        ]
        self._sampled_machines = candidates[: cfg.resource_sample_machines]
        if self._sampled_machines:
            self._push(cfg.resource_sample_period_s, _SAMPLE, None)

    def _handle_sample(self, _payload: object, horizon: float) -> None:
        for machine in self._sampled_machines:
            self.result.resource_samples.append(
                ResourceSample(
                    machine_id=machine.machine_id,
                    sku=machine.sku.name,
                    software=machine.software.name,
                    time=self.now,
                    cores_in_use=min(machine.active_cores, machine.sku.cores),
                    ram_gb_in_use=machine.ram_gb_in_use,
                    ssd_gb_in_use=machine.ssd_gb_in_use,
                )
            )
        next_time = self.now + self.config.resource_sample_period_s
        if next_time < horizon:
            self._push(next_time, _SAMPLE, None)
