"""Load seasonality: diurnal and weekly modulation of job arrivals.

Figure 1 of the paper shows the weekly CPU-utilization rhythm of a Cosmos
cluster; cluster-wide tuning must cope with "long-term workload seasonalities"
(Section 2). The profile here is a deterministic rate multiplier: a cosine
diurnal cycle peaking mid-afternoon plus a weekend dip. Randomness enters via
the Poisson arrival process, not the profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.units import SECONDS_PER_DAY, SECONDS_PER_HOUR

__all__ = ["SeasonalityProfile", "SpikeProfile", "FLAT_PROFILE"]


@dataclass(frozen=True, slots=True)
class SeasonalityProfile:
    """Deterministic arrival-rate multiplier over the week.

    ``multiplier`` averages ≈ 1 over a full week, so the generator's base
    jobs-per-hour stays interpretable as the weekly mean rate.
    """

    diurnal_amplitude: float = 0.25
    peak_hour: float = 14.0
    weekend_dip: float = 0.20

    def __post_init__(self) -> None:
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if not 0.0 <= self.weekend_dip < 1.0:
            raise ValueError("weekend_dip must be in [0, 1)")

    def multiplier(self, t_seconds: float) -> float:
        """Rate multiplier at simulation time ``t_seconds`` (t=0 is Monday 00:00)."""
        hour_of_day = (t_seconds % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        day_of_week = int(t_seconds // SECONDS_PER_DAY) % 7
        diurnal = 1.0 + self.diurnal_amplitude * math.cos(
            2.0 * math.pi * (hour_of_day - self.peak_hour) / 24.0
        )
        weekly = 1.0 - self.weekend_dip if day_of_week >= 5 else 1.0
        return diurnal * weekly

    @property
    def max_multiplier(self) -> float:
        """Upper bound of :meth:`multiplier`, used for Poisson thinning."""
        return 1.0 + self.diurnal_amplitude


@dataclass(frozen=True, slots=True)
class SpikeProfile:
    """A base profile overlaid with one transient demand spike.

    Models the scenario-catalog "demand spike": arrivals follow ``base``
    except during ``[spike_start_hour, spike_start_hour + spike_duration_hours)``
    of absolute simulation time, where the rate is multiplied by
    ``spike_magnitude``. Duck-typed to :class:`SeasonalityProfile` (the
    workload generator only needs ``multiplier`` and ``max_multiplier``).
    """

    base: SeasonalityProfile = SeasonalityProfile()
    spike_start_hour: float = 6.0
    spike_duration_hours: float = 4.0
    spike_magnitude: float = 2.0

    def __post_init__(self) -> None:
        if self.spike_start_hour < 0:
            raise ValueError("spike_start_hour must be non-negative")
        if self.spike_duration_hours <= 0:
            raise ValueError("spike_duration_hours must be positive")
        if self.spike_magnitude < 1.0:
            raise ValueError("spike_magnitude must be >= 1 (use weekend_dip for lulls)")

    def multiplier(self, t_seconds: float) -> float:
        """Rate multiplier at simulation time ``t_seconds``."""
        hour = t_seconds / SECONDS_PER_HOUR
        in_spike = (
            self.spike_start_hour
            <= hour
            < self.spike_start_hour + self.spike_duration_hours
        )
        scale = self.spike_magnitude if in_spike else 1.0
        return self.base.multiplier(t_seconds) * scale

    @property
    def max_multiplier(self) -> float:
        """Upper bound of :meth:`multiplier`, used for Poisson thinning."""
        return self.base.max_multiplier * self.spike_magnitude


FLAT_PROFILE = SeasonalityProfile(diurnal_amplitude=0.0, weekend_dip=0.0)
"""A constant-rate profile (useful in tests and controlled experiments)."""
