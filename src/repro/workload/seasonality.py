"""Load seasonality: diurnal and weekly modulation of job arrivals.

Figure 1 of the paper shows the weekly CPU-utilization rhythm of a Cosmos
cluster; cluster-wide tuning must cope with "long-term workload seasonalities"
(Section 2). The profile here is a deterministic rate multiplier: a cosine
diurnal cycle peaking mid-afternoon plus a weekend dip. Randomness enters via
the Poisson arrival process, not the profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.units import SECONDS_PER_DAY, SECONDS_PER_HOUR

__all__ = ["SeasonalityProfile", "FLAT_PROFILE"]


@dataclass(frozen=True, slots=True)
class SeasonalityProfile:
    """Deterministic arrival-rate multiplier over the week.

    ``multiplier`` averages ≈ 1 over a full week, so the generator's base
    jobs-per-hour stays interpretable as the weekly mean rate.
    """

    diurnal_amplitude: float = 0.25
    peak_hour: float = 14.0
    weekend_dip: float = 0.20

    def __post_init__(self) -> None:
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if not 0.0 <= self.weekend_dip < 1.0:
            raise ValueError("weekend_dip must be in [0, 1)")

    def multiplier(self, t_seconds: float) -> float:
        """Rate multiplier at simulation time ``t_seconds`` (t=0 is Monday 00:00)."""
        hour_of_day = (t_seconds % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        day_of_week = int(t_seconds // SECONDS_PER_DAY) % 7
        diurnal = 1.0 + self.diurnal_amplitude * math.cos(
            2.0 * math.pi * (hour_of_day - self.peak_hour) / 24.0
        )
        weekly = 1.0 - self.weekend_dip if day_of_week >= 5 else 1.0
        return diurnal * weekly

    @property
    def max_multiplier(self) -> float:
        """Upper bound of :meth:`multiplier`, used for Poisson thinning."""
        return 1.0 + self.diurnal_amplitude


FLAT_PROFILE = SeasonalityProfile(diurnal_amplitude=0.0, weekend_dip=0.0)
"""A constant-rate profile (useful in tests and controlled experiments)."""
