"""Workload generation: job arrivals over simulated time.

Arrivals are a non-homogeneous Poisson process (thinning against the
seasonality profile's rate ceiling) over a weighted template mix, plus an
optional deterministic cadence of benchmark jobs (the TPC-H/DS-like jobs the
paper re-runs before and after deployment, Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import RngStreams
from repro.utils.units import SECONDS_PER_HOUR, hours
from repro.workload.seasonality import FLAT_PROFILE, SeasonalityProfile, SpikeProfile
from repro.workload.template import JobTemplate, benchmark_templates

__all__ = ["JobArrival", "Workload", "WorkloadGenerator", "estimate_jobs_per_hour"]


@dataclass(frozen=True, slots=True)
class JobArrival:
    """One job arrival: a template instantiated at a point in time."""

    time: float
    template: JobTemplate


@dataclass
class Workload:
    """An ordered list of job arrivals covering ``duration_hours``."""

    arrivals: list[JobArrival] = field(default_factory=list)
    duration_hours: float = 0.0

    def __len__(self) -> int:
        return len(self.arrivals)

    def __iter__(self):
        return iter(self.arrivals)

    @property
    def jobs_per_hour(self) -> float:
        """Realized mean arrival rate."""
        if self.duration_hours <= 0:
            return 0.0
        return len(self.arrivals) / self.duration_hours


class WorkloadGenerator:
    """Generates a :class:`Workload` from a template mix and a rate profile."""

    def __init__(
        self,
        templates: tuple[JobTemplate, ...],
        jobs_per_hour: float,
        seasonality: SeasonalityProfile | SpikeProfile = FLAT_PROFILE,
        streams: RngStreams | None = None,
        benchmark_period_hours: float = 0.0,
    ):
        """``benchmark_period_hours > 0`` injects every benchmark template once
        per period, staggered within the period (0 disables injection)."""
        if jobs_per_hour <= 0:
            raise ValueError(f"jobs_per_hour must be positive, got {jobs_per_hour}")
        weighted = [t for t in templates if t.weight > 0]
        if not weighted:
            raise ValueError("template mix has no template with positive weight")
        self.templates = tuple(weighted)
        self.jobs_per_hour = jobs_per_hour
        self.seasonality = seasonality
        self.streams = streams if streams is not None else RngStreams(0)
        self.benchmark_period_hours = benchmark_period_hours
        weights = np.array([t.weight for t in self.templates], dtype=float)
        self._probs = weights / weights.sum()

    def generate(self, duration_hours: float) -> Workload:
        """Materialize all arrivals in ``[0, duration_hours)``."""
        if duration_hours <= 0:
            raise ValueError("duration_hours must be positive")
        rng = self.streams.get("arrivals")
        horizon = hours(duration_hours)
        max_rate = self.jobs_per_hour * self.seasonality.max_multiplier / SECONDS_PER_HOUR
        arrivals: list[JobArrival] = []

        # Thinned Poisson stream over the template mix.
        t = 0.0
        while True:
            t += rng.exponential(1.0 / max_rate)
            if t >= horizon:
                break
            accept_prob = (
                self.jobs_per_hour
                * self.seasonality.multiplier(t)
                / SECONDS_PER_HOUR
                / max_rate
            )
            if rng.random() < accept_prob:
                template = self.templates[int(rng.choice(len(self.templates), p=self._probs))]
                arrivals.append(JobArrival(time=t, template=template))

        # Deterministic benchmark cadence (staggered to avoid self-interference).
        if self.benchmark_period_hours > 0:
            benches = benchmark_templates()
            period = hours(self.benchmark_period_hours)
            stagger = period / (len(benches) + 1)
            for i, template in enumerate(benches):
                t = stagger * (i + 1)
                while t < horizon:
                    arrivals.append(JobArrival(time=t, template=template))
                    t += period

        arrivals.sort(key=lambda a: a.time)
        return Workload(arrivals=arrivals, duration_hours=duration_hours)


def estimate_jobs_per_hour(
    total_container_slots: int,
    target_occupancy: float,
    templates: tuple[JobTemplate, ...],
    mean_task_duration_s: float,
) -> float:
    """Back-of-envelope arrival rate hitting a target slot occupancy.

    Little's law: concurrent tasks = arrival_rate × tasks_per_job ×
    task_duration. We solve for the arrival rate that keeps
    ``target_occupancy`` of the cluster's container slots busy. The estimate
    is deliberately rough (durations depend on contention); benchmarks treat
    it as a starting point.
    """
    if not 0.0 < target_occupancy <= 1.0:
        raise ValueError("target_occupancy must be in (0, 1]")
    weighted = [t for t in templates if t.weight > 0]
    if not weighted:
        raise ValueError("template mix has no template with positive weight")
    total_weight = sum(t.weight for t in weighted)
    mean_tasks = sum(t.expected_tasks * t.weight for t in weighted) / total_weight
    target_concurrent = total_container_slots * target_occupancy
    jobs_per_second = target_concurrent / (mean_tasks * mean_task_duration_s)
    return jobs_per_second * SECONDS_PER_HOUR
