"""Workload substrate: SCOPE-like recurring jobs and their arrivals."""

from repro.workload.generator import (
    JobArrival,
    Workload,
    WorkloadGenerator,
    estimate_jobs_per_hour,
)
from repro.workload.job import JobRuntime
from repro.workload.operators import OPERATORS, OperatorSpec, operator_by_name
from repro.workload.seasonality import FLAT_PROFILE, SeasonalityProfile, SpikeProfile
from repro.workload.task import Task, TaskId, task_run_scope
from repro.workload.template import (
    JobTemplate,
    StageSpec,
    benchmark_templates,
    default_templates,
)

__all__ = [
    "JobArrival",
    "Workload",
    "WorkloadGenerator",
    "estimate_jobs_per_hour",
    "JobRuntime",
    "OPERATORS",
    "OperatorSpec",
    "operator_by_name",
    "FLAT_PROFILE",
    "SeasonalityProfile",
    "SpikeProfile",
    "Task",
    "TaskId",
    "task_run_scope",
    "JobTemplate",
    "StageSpec",
    "benchmark_templates",
    "default_templates",
]
