"""Job runtime: stage-barrier execution state and critical-path tracking.

A job instance executes its template's stages in order; a stage starts only
when the previous one has fully finished (stage barrier). The *critical path*
of such a job is, per stage, the last task to finish — exactly the
"slow tasks in the critical path" the Level III abstraction keys on
(Section 3.2): protecting those tasks protects job runtime.
"""

from __future__ import annotations

import numpy as np

from repro.workload.operators import operator_by_name, sample_task_params
from repro.workload.task import Task
from repro.workload.template import JobTemplate

__all__ = ["JobRuntime"]


class JobRuntime:
    """Execution state of one job instance."""

    __slots__ = (
        "job_id",
        "template",
        "submit_time",
        "size_multiplier",
        "current_stage",
        "remaining_in_stage",
        "n_tasks_total",
        "total_task_seconds",
        "last_finish_time",
        "last_finish_log_row",
        "finished",
    )

    def __init__(
        self,
        job_id: int,
        template: JobTemplate,
        submit_time: float,
        rng: np.random.Generator,
    ):
        self.job_id = job_id
        self.template = template
        self.submit_time = submit_time
        self.size_multiplier = template.sample_size_multiplier(rng)
        self.current_stage = -1
        self.remaining_in_stage = 0
        self.n_tasks_total = 0
        self.total_task_seconds = 0.0
        self.last_finish_time = submit_time
        self.last_finish_log_row = -1
        self.finished = False

    @property
    def has_next_stage(self) -> bool:
        """True when at least one stage has not started yet."""
        return self.current_stage + 1 < len(self.template.stages)

    def start_next_stage(self, rng: np.random.Generator) -> list[Task]:
        """Materialize the next stage's tasks and advance the stage pointer."""
        if not self.has_next_stage:
            raise RuntimeError(f"job {self.job_id} has no next stage to start")
        if self.remaining_in_stage != 0:
            raise RuntimeError(
                f"job {self.job_id} stage {self.current_stage} still has "
                f"{self.remaining_in_stage} unfinished tasks"
            )
        self.current_stage += 1
        spec = self.template.stages[self.current_stage]
        op = operator_by_name(spec.operator)
        n_tasks = spec.sample_n_tasks(rng, self.size_multiplier)
        work, data, ram, ssd = sample_task_params(
            op, n_tasks, rng, work_scale=spec.work_scale, data_scale=spec.data_scale
        )
        tasks = [
            Task(
                job_id=self.job_id,
                stage_index=self.current_stage,
                operator=op.name,
                work_seconds=float(work[i]),
                data_bytes=float(data[i]),
                cpu_fraction=op.cpu_fraction,
                ram_gb=float(ram[i]),
                ssd_gb=float(ssd[i]),
            )
            for i in range(n_tasks)
        ]
        self.remaining_in_stage = n_tasks
        self.n_tasks_total += n_tasks
        self.last_finish_log_row = -1
        return tasks

    def on_task_finish(self, finish_time: float, duration: float, log_row: int) -> bool:
        """Record one task completion; returns True when the stage completed.

        ``log_row`` is the task's row in the task log (−1 if unsampled); the
        caller uses the stage's final ``last_finish_log_row`` to patch the
        critical flag.
        """
        if self.remaining_in_stage <= 0:
            raise RuntimeError(f"job {self.job_id} has no running tasks to finish")
        self.remaining_in_stage -= 1
        self.total_task_seconds += duration
        if finish_time >= self.last_finish_time:
            self.last_finish_time = finish_time
            self.last_finish_log_row = log_row
        return self.remaining_in_stage == 0
