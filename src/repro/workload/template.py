"""Job templates: the recurring-job abstraction.

A *job template* is a recurring job with the specific data inputs removed
(Section 3.2, footnote 1). Instances of the same template have statistically
similar shape, which is what makes implicit SLOs meaningful: the recent
runtimes of a template bound the expected runtime of its next instance.

A template is a chain of stages (SCOPE jobs compile to DAGs; a chain with a
barrier between stages preserves the critical-path structure the paper relies
on). Stage task counts and per-task work are sampled per instance, with a
template-level size multiplier so "the same job on bigger data" is captured.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.operators import operator_by_name

__all__ = [
    "StageSpec",
    "JobTemplate",
    "default_templates",
    "benchmark_templates",
]


@dataclass(frozen=True, slots=True)
class StageSpec:
    """One stage of a template: an operator fanned out over tasks."""

    operator: str
    n_tasks_mean: float
    n_tasks_sigma: float = 0.3  # log-space sigma; 0 = deterministic count
    work_scale: float = 1.0
    data_scale: float = 1.0

    def __post_init__(self) -> None:
        operator_by_name(self.operator)  # validate eagerly
        if self.n_tasks_mean < 1:
            raise ValueError("n_tasks_mean must be >= 1")

    def sample_n_tasks(self, rng: np.random.Generator, size_mult: float = 1.0) -> int:
        """Draw the task count for one instance of this stage."""
        mean = self.n_tasks_mean * size_mult
        if self.n_tasks_sigma <= 0:
            return max(1, int(round(mean)))
        mu = np.log(mean) - self.n_tasks_sigma**2 / 2.0
        return max(1, int(round(rng.lognormal(mu, self.n_tasks_sigma))))


@dataclass(frozen=True, slots=True)
class JobTemplate:
    """A recurring job: named chain of stages plus an arrival-mix weight."""

    name: str
    stages: tuple[StageSpec, ...]
    weight: float = 1.0
    size_sigma: float = 0.25  # log-space sigma of the per-instance size multiplier
    is_benchmark: bool = False

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError(f"template {self.name!r} needs at least one stage")
        if self.weight < 0:
            raise ValueError("weight must be non-negative")

    def sample_size_multiplier(self, rng: np.random.Generator) -> float:
        """Per-instance input-size multiplier (1.0 in expectation)."""
        if self.size_sigma <= 0:
            return 1.0
        mu = -self.size_sigma**2 / 2.0
        return float(rng.lognormal(mu, self.size_sigma))

    @property
    def expected_tasks(self) -> float:
        """Expected task count of one instance (for load calibration)."""
        return float(sum(stage.n_tasks_mean for stage in self.stages))

    def expected_work_seconds(self) -> float:
        """Expected total normalized CPU work of one instance."""
        total = 0.0
        for stage in self.stages:
            op = operator_by_name(stage.operator)
            total += stage.n_tasks_mean * op.work_mean_s * stage.work_scale
        return total


def default_templates() -> tuple[JobTemplate, ...]:
    """The production-like template mix used across the benchmarks.

    Mirrors the qualitative mix Section 2 describes: mostly small/medium
    recurring SCOPE jobs, a tail of large multi-stage pipelines.
    """
    return (
        JobTemplate(
            name="hourly_ingest",
            stages=(
                StageSpec("Extract", n_tasks_mean=12),
                StageSpec("Process", n_tasks_mean=8),
            ),
            weight=3.0,
        ),
        JobTemplate(
            name="log_cook",
            stages=(
                StageSpec("Extract", n_tasks_mean=16),
                StageSpec("Partition", n_tasks_mean=10),
                StageSpec("Aggregate", n_tasks_mean=6),
            ),
            weight=2.5,
        ),
        JobTemplate(
            name="ad_hoc_query",
            stages=(
                StageSpec("Extract", n_tasks_mean=6, work_scale=0.6),
                StageSpec("Aggregate", n_tasks_mean=4, work_scale=0.6),
            ),
            weight=4.0,
        ),
        JobTemplate(
            name="daily_rollup",
            stages=(
                StageSpec("Extract", n_tasks_mean=20),
                StageSpec("Combine", n_tasks_mean=12),
                StageSpec("PodAggregate", n_tasks_mean=8),
                StageSpec("Aggregate", n_tasks_mean=4),
            ),
            weight=1.5,
        ),
        JobTemplate(
            name="index_build",
            stages=(
                StageSpec("Extract", n_tasks_mean=18),
                StageSpec("IndexedPartition", n_tasks_mean=14, work_scale=1.2),
                StageSpec("Combine", n_tasks_mean=8),
            ),
            weight=1.0,
        ),
        JobTemplate(
            name="feature_join",
            stages=(
                StageSpec("Extract", n_tasks_mean=10),
                StageSpec("Cross", n_tasks_mean=8, work_scale=1.1),
                StageSpec("Process", n_tasks_mean=6),
            ),
            weight=1.0,
        ),
        JobTemplate(
            name="ml_prep_pipeline",
            stages=(
                StageSpec("Extract", n_tasks_mean=14),
                StageSpec("Split", n_tasks_mean=10),
                StageSpec("Process", n_tasks_mean=12, work_scale=1.3),
                StageSpec("Partition", n_tasks_mean=8),
                StageSpec("Aggregate", n_tasks_mean=5),
            ),
            weight=0.8,
        ),
    )


def benchmark_templates() -> tuple[JobTemplate, ...]:
    """Three TPC-H/TPC-DS-flavoured benchmark jobs (Figure 11).

    Benchmark instances use low size variance so before/after runtime
    comparisons measure the *cluster*, not the workload draw.
    """
    return (
        JobTemplate(
            name="tpch_q1_like",
            stages=(
                StageSpec("Extract", n_tasks_mean=16, n_tasks_sigma=0.0),
                StageSpec("Aggregate", n_tasks_mean=8, n_tasks_sigma=0.0),
            ),
            weight=0.0,
            size_sigma=0.05,
            is_benchmark=True,
        ),
        JobTemplate(
            name="tpch_q18_like",
            stages=(
                StageSpec("Extract", n_tasks_mean=14, n_tasks_sigma=0.0),
                StageSpec("Cross", n_tasks_mean=10, n_tasks_sigma=0.0),
                StageSpec("Aggregate", n_tasks_mean=6, n_tasks_sigma=0.0),
            ),
            weight=0.0,
            size_sigma=0.05,
            is_benchmark=True,
        ),
        JobTemplate(
            name="tpcds_q64_like",
            stages=(
                StageSpec("Extract", n_tasks_mean=12, n_tasks_sigma=0.0),
                StageSpec("Partition", n_tasks_mean=10, n_tasks_sigma=0.0),
                StageSpec("Cross", n_tasks_mean=8, n_tasks_sigma=0.0),
                StageSpec("Aggregate", n_tasks_mean=6, n_tasks_sigma=0.0),
            ),
            weight=0.0,
            size_sigma=0.05,
            is_benchmark=True,
        ),
    )
