"""SCOPE-like operator taxonomy.

Figure 6 of the paper shows nine task types whose mix is uniform across racks
and SKUs: Extract, Split, Process, Aggregate, Partition, IndexedPartition,
Cross, Combine, PodAggregate. Each operator here carries the distributional
parameters of the tasks it spawns: normalized CPU work (seconds on a
speed-1.0 core at zero contention), bytes read, CPU activity fraction, and
per-container RAM/SSD footprints.

Work and data are log-normal — heavy-tailed task populations are what make
stragglers and critical paths interesting (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import GB, MB

__all__ = ["OperatorSpec", "OPERATORS", "operator_by_name", "sample_task_params"]


@dataclass(frozen=True, slots=True)
class OperatorSpec:
    """Distributional profile of one SCOPE-like operator's tasks."""

    name: str
    work_mean_s: float
    work_sigma: float  # sigma of the underlying normal (log-space)
    data_mean_bytes: float
    data_sigma: float
    cpu_fraction: float
    ram_gb_per_container: float
    ssd_gb_per_container: float

    def __post_init__(self) -> None:
        if not 0.0 < self.cpu_fraction <= 1.0:
            raise ValueError(f"{self.name}: cpu_fraction must be in (0, 1]")
        if self.work_mean_s <= 0 or self.data_mean_bytes <= 0:
            raise ValueError(f"{self.name}: work and data means must be positive")


OPERATORS: tuple[OperatorSpec, ...] = (
    OperatorSpec("Extract", 220.0, 0.55, 1.6 * GB, 0.70, 0.72, 2.0, 14.0),
    OperatorSpec("Split", 140.0, 0.50, 1.0 * GB, 0.60, 0.65, 1.5, 10.0),
    OperatorSpec("Process", 300.0, 0.60, 1.2 * GB, 0.65, 0.90, 3.0, 12.0),
    OperatorSpec("Aggregate", 260.0, 0.55, 900 * MB, 0.60, 0.85, 3.5, 9.0),
    OperatorSpec("Partition", 180.0, 0.50, 1.4 * GB, 0.65, 0.70, 2.2, 16.0),
    OperatorSpec("IndexedPartition", 240.0, 0.55, 1.5 * GB, 0.65, 0.75, 2.8, 18.0),
    OperatorSpec("Cross", 380.0, 0.65, 800 * MB, 0.60, 0.95, 4.0, 8.0),
    OperatorSpec("Combine", 200.0, 0.50, 1.1 * GB, 0.60, 0.80, 2.5, 11.0),
    OperatorSpec("PodAggregate", 160.0, 0.45, 700 * MB, 0.55, 0.78, 2.0, 7.0),
)

_OPERATOR_INDEX = {op.name: op for op in OPERATORS}


def operator_by_name(name: str) -> OperatorSpec:
    """Look up an operator spec by name."""
    try:
        return _OPERATOR_INDEX[name]
    except KeyError:
        known = ", ".join(sorted(_OPERATOR_INDEX))
        raise KeyError(f"unknown operator {name!r}; known operators: {known}") from None


def sample_task_params(
    op: OperatorSpec,
    n_tasks: int,
    rng: np.random.Generator,
    work_scale: float = 1.0,
    data_scale: float = 1.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Draw per-task (work_s, data_bytes, ram_gb, ssd_gb) arrays for a stage.

    Log-normal draws are parameterized so the *mean* (not the median) equals
    the spec's mean, i.e. ``mu = ln(mean) - sigma^2 / 2``.
    """
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    work_mu = np.log(op.work_mean_s * work_scale) - op.work_sigma**2 / 2.0
    data_mu = np.log(op.data_mean_bytes * data_scale) - op.data_sigma**2 / 2.0
    work = rng.lognormal(mean=work_mu, sigma=op.work_sigma, size=n_tasks)
    data = rng.lognormal(mean=data_mu, sigma=op.data_sigma, size=n_tasks)
    ram = np.maximum(
        0.25, rng.normal(op.ram_gb_per_container, op.ram_gb_per_container * 0.2, n_tasks)
    )
    ssd = np.maximum(
        0.5, rng.normal(op.ssd_gb_per_container, op.ssd_gb_per_container * 0.2, n_tasks)
    )
    return work, data, ram, ssd
