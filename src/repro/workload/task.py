"""Task: one container's worth of work.

A task is the unit the scheduler places (one task = one container, Section 2).
Fields are plain data; all execution behaviour (duration under contention,
throttling, I/O penalties) lives in :class:`repro.cluster.machine.Machine`.

Task identities are **run-scoped**: a :class:`TaskId` pairs a run token with
a sequence number allocated from zero inside that run's
:func:`task_run_scope`. A bare process-monotonic counter would be enough for
simulator-internal keying, but it is process-*relative*: two pool worker
processes both start counting at zero, so the same sequence number names
*different* tasks in different workers, and cross-run joins on task identity
silently collide. With the run token derived from the simulation's inputs
(the workload tag / seed), the same simulation allocates the same ids in any
process, and different runs can never collide.
"""

from __future__ import annotations

import contextvars
import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Task", "TaskId", "task_run_scope"]


@dataclass(frozen=True, slots=True)
class TaskId:
    """Run-scoped task identity: (run token, sequence within the run).

    Hashable and totally ordered within a run; equal across processes for
    the same simulation (the token derives from the run's inputs, the
    sequence from creation order, both deterministic).
    """

    run_token: str
    seq: int


class _TaskIdAllocator:
    """Allocates :class:`TaskId` values for one run scope."""

    __slots__ = ("run_token", "_counter")

    def __init__(self, run_token: str):
        self.run_token = run_token
        self._counter = itertools.count()

    def next_id(self) -> TaskId:
        return TaskId(run_token=self.run_token, seq=next(self._counter))


#: Tasks created outside any run scope (ad-hoc construction in tests or
#: scripts) fall back to a process-local scope — the pre-run-scoped
#: behaviour, which is fine exactly because such tasks never cross runs.
#: A ContextVar rather than a module global: should two simulations ever
#: run concurrently in one process (threads, async), each context keeps its
#: own allocator instead of stamping the later scope's token on both runs.
_allocator: contextvars.ContextVar[_TaskIdAllocator] = contextvars.ContextVar(
    "task_id_allocator", default=_TaskIdAllocator("proc")
)


def _next_task_id() -> TaskId:
    return _allocator.get().next_id()


@contextmanager
def task_run_scope(run_token: str):
    """Allocate task ids under ``run_token``, sequence restarting at zero.

    :meth:`repro.cluster.simulator.ClusterSimulator.run` wraps its event
    loop in one scope per run, so every task of a simulation carries the
    run's token. Scopes nest (the previous allocator is restored on exit)
    and are isolated per execution context.
    """
    token = _allocator.set(_TaskIdAllocator(run_token))
    try:
        yield
    finally:
        _allocator.reset(token)


@dataclass(slots=True)
class Task:
    """A single schedulable task (container)."""

    job_id: int
    stage_index: int
    operator: str
    work_seconds: float
    data_bytes: float
    cpu_fraction: float
    ram_gb: float
    ssd_gb: float
    task_id: TaskId = field(default_factory=_next_task_id, init=False, compare=False)

    def __post_init__(self) -> None:
        if self.work_seconds <= 0:
            raise ValueError("work_seconds must be positive")
        if self.data_bytes < 0:
            raise ValueError("data_bytes must be non-negative")
        if not 0.0 < self.cpu_fraction <= 1.0:
            raise ValueError("cpu_fraction must be in (0, 1]")
