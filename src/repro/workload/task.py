"""Task: one container's worth of work.

A task is the unit the scheduler places (one task = one container, Section 2).
Fields are plain data; all execution behaviour (duration under contention,
throttling, I/O penalties) lives in :class:`repro.cluster.machine.Machine`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Task"]


@dataclass(slots=True)
class Task:
    """A single schedulable task (container)."""

    job_id: int
    stage_index: int
    operator: str
    work_seconds: float
    data_bytes: float
    cpu_fraction: float
    ram_gb: float
    ssd_gb: float

    def __post_init__(self) -> None:
        if self.work_seconds <= 0:
            raise ValueError("work_seconds must be positive")
        if self.data_bytes < 0:
            raise ValueError("data_bytes must be non-negative")
        if not 0.0 < self.cpu_fraction <= 1.0:
            raise ValueError("cpu_fraction must be in (0, 1]")
