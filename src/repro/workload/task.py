"""Task: one container's worth of work.

A task is the unit the scheduler places (one task = one container, Section 2).
Fields are plain data; all execution behaviour (duration under contention,
throttling, I/O penalties) lives in :class:`repro.cluster.machine.Machine`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["Task"]

#: Process-wide monotonic task sequence. Unlike ``id(task)``, a sequence id
#: is never reused after a task is garbage-collected, so simulator-side maps
#: keyed by it cannot collide (the id-reuse hazard of CPython object ids).
_TASK_SEQUENCE = itertools.count()


@dataclass(slots=True)
class Task:
    """A single schedulable task (container)."""

    job_id: int
    stage_index: int
    operator: str
    work_seconds: float
    data_bytes: float
    cpu_fraction: float
    ram_gb: float
    ssd_gb: float
    seq_id: int = field(
        default_factory=_TASK_SEQUENCE.__next__, init=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.work_seconds <= 0:
            raise ValueError("work_seconds must be positive")
        if self.data_bytes < 0:
            raise ValueError("data_bytes must be non-negative")
        if not 0.0 < self.cpu_fraction <= 1.0:
            raise ValueError("cpu_fraction must be in (0, 1]")
