"""Per-tenant cost accounting: the dollars plane of the tuning service.

KEA tunes a fleet whose machine-hours are real money; the Co-Tuning line
of work makes cost a first-class objective next to throughput and latency.
This package prices simulated windows:

* :mod:`repro.cost.pricebook` — :class:`PriceBook`, per-SKU $/machine-hour
  rates plus a $/kWh power surcharge (default derived from the SKU table).
* :mod:`repro.cost.report` — :class:`CostReport` via :func:`frame_cost`
  (one vectorized pass over a telemetry frame's SKU/availability/power
  columns) or :func:`window_cost` (provisioned-rate estimate for
  frame-less windows).

Campaigns attach a report to every simulation outcome, accrue dollars in
their :class:`~repro.obs.ledger.TuningCostLedger`, and may hand wave-level
spend to a :class:`~repro.flighting.safety.DeploymentGuardrail` so rollouts
whose measured impact is not worth their dollars get vetoed.
"""

from repro.cost.pricebook import PriceBook, default_price_book
from repro.cost.report import CostReport, frame_cost, window_cost

__all__ = [
    "CostReport",
    "PriceBook",
    "default_price_book",
    "frame_cost",
    "window_cost",
]
