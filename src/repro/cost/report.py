"""Dollar-cost rollups over machine-hour telemetry.

:func:`frame_cost` prices a simulation window in one vectorized pass over
the frame's SKU codes, availability and power columns — no per-record
loop, so costing a fleet-scale window is O(rows) numpy work. Faulted
machine-hours are billed only for the fraction of the hour the machine was
actually up (``available_fraction``), and powered-off time draws no energy
by construction (the machine's power integral already excludes it).

:func:`window_cost` is the frame-less fallback: rollout/flight/impact
windows summarize into effects rather than telemetry frames, so their
spend is estimated from provisioned fleet rates alone and flagged
``estimated``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cost.pricebook import PriceBook
from repro.utils.tables import TextTable

__all__ = ["CostReport", "frame_cost", "window_cost"]


@dataclass(frozen=True)
class CostReport:
    """What one simulation window cost, in dollars.

    ``by_sku`` rows are ``(sku, billed machine-hours, machine dollars)``;
    the power surcharge is fleet-wide (per-SKU attribution would just
    re-split the same column). ``estimated`` marks reports priced from
    provisioned fleet rates because the window produced no telemetry frame.
    """

    machine_hours: float
    faulted_machine_hours: float
    machine_dollars: float
    power_kwh: float
    power_dollars: float
    by_sku: tuple[tuple[str, float, float], ...]
    estimated: bool = False

    @property
    def total_dollars(self) -> float:
        """Machine rates plus the power surcharge."""
        return self.machine_dollars + self.power_dollars

    def summary(self) -> str:
        """Per-SKU cost table plus the power and fault lines."""
        table = TextTable(
            ["sku", "machine-hours", "machine $"],
            title="Window cost"
            + (" (estimated: no telemetry frame)" if self.estimated else ""),
        )
        for sku, hours, dollars in self.by_sku:
            table.add_row([sku, f"{hours:,.1f}", f"{dollars:,.2f}"])
        table.add_row(["(power)", f"{self.power_kwh:,.1f} kWh",
                       f"{self.power_dollars:,.2f}"])
        table.add_row(["total", f"{self.machine_hours:,.1f}",
                       f"{self.total_dollars:,.2f}"])
        lines = [table.render()]
        if self.faulted_machine_hours > 0.0:
            lines.append(
                f"faulted (unbilled) machine-hours: "
                f"{self.faulted_machine_hours:,.1f}"
            )
        return "\n".join(lines)


def frame_cost(frame, book: PriceBook) -> CostReport:
    """Price one telemetry frame: SKU rates × billed hours + energy.

    Billed hours weight each row by its ``available_fraction``, so an
    outage shows up as money *not* spent on dead machines; the remainder
    is reported as ``faulted_machine_hours``.
    """
    n = len(frame)
    if n == 0:
        return CostReport(
            machine_hours=0.0, faulted_machine_hours=0.0, machine_dollars=0.0,
            power_kwh=0.0, power_dollars=0.0, by_sku=(),
        )
    categories = frame.categories("sku")
    codes = frame.codes("sku")
    available = frame.column("available_fraction")
    hours_by_sku = np.bincount(codes, weights=available, minlength=len(categories))
    rates = book.rate_vector(categories)
    dollars_by_sku = rates * hours_by_sku
    power_kwh = float(frame.column("avg_power_watts").sum()) / 1000.0
    return CostReport(
        machine_hours=float(available.sum()),
        faulted_machine_hours=float(n - available.sum()),
        machine_dollars=float(dollars_by_sku.sum()),
        power_kwh=power_kwh,
        power_dollars=power_kwh * book.power_dollars_per_kwh,
        by_sku=tuple(
            (sku, float(hours_by_sku[code]), float(dollars_by_sku[code]))
            for code, sku in enumerate(categories)
        ),
    )


def window_cost(fleet_spec, book: PriceBook, window_hours: float) -> CostReport:
    """Estimate a window's spend from provisioned fleet rates alone.

    Used for phases whose outcomes carry no telemetry frame (flight,
    rollout, impact): every provisioned machine is billed for the full
    window at its SKU rate, with no power term (draw is unknown without
    telemetry).
    """
    by_sku = tuple(
        (
            population.sku.name,
            population.count * window_hours,
            population.count * window_hours * book.rate_for(population.sku.name),
        )
        for population in fleet_spec.populations
    )
    return CostReport(
        machine_hours=float(fleet_spec.total_machines * window_hours),
        faulted_machine_hours=0.0,
        machine_dollars=float(sum(dollars for _, _, dollars in by_sku)),
        power_kwh=0.0,
        power_dollars=0.0,
        by_sku=by_sku,
        estimated=True,
    )
