"""Per-SKU pricing: the dollars side of the tuning trade-off.

A :class:`PriceBook` assigns every SKU an amortized machine-hour rate
(hardware depreciation + datacenter overhead) and prices consumed energy
separately per kWh. Like a :class:`~repro.faults.plan.FaultPlan` it is a
frozen value object built from primitives, so it pickles, compares by
value, and folds into reprs cleanly.

The default book derives rates from the SKU table itself — newer
generations cost more per hour in rough proportion to their compute — so
cost numbers stay plausible as the SKU catalog evolves without hand-kept
price constants drifting out of sync.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.sku import DEFAULT_SKUS

__all__ = ["PriceBook", "default_price_book"]


@dataclass(frozen=True)
class PriceBook:
    """Per-SKU $/machine-hour plus a $/kWh power surcharge."""

    rates: tuple[tuple[str, float], ...]
    default_rate: float = 0.25
    power_dollars_per_kwh: float = 0.11

    def __post_init__(self) -> None:
        if self.default_rate < 0.0 or self.power_dollars_per_kwh < 0.0:
            raise ValueError("prices must be non-negative")
        for sku, rate in self.rates:
            if rate < 0.0:
                raise ValueError(f"negative rate for {sku!r}")

    def rate_for(self, sku: str) -> float:
        """The machine-hour rate for one SKU (``default_rate`` if unlisted)."""
        for name, rate in self.rates:
            if name == sku:
                return rate
        return self.default_rate

    def rate_vector(self, categories: list[str]) -> np.ndarray:
        """Rates aligned to a frame's SKU category list (code → $/hour)."""
        return np.asarray(
            [self.rate_for(name) for name in categories], dtype=np.float64
        )

    def fleet_dollars_per_hour(self, fleet_spec) -> float:
        """Machine-rate burn of a whole fleet per hour (power excluded).

        The estimate used when a window produced no telemetry frame — power
        draw is unknowable without one, so only the provisioned machine
        rates are charged.
        """
        return sum(
            population.count * self.rate_for(population.sku.name)
            for population in fleet_spec.populations
        )


def default_price_book() -> PriceBook:
    """A price book derived from the default SKU table.

    Rate model: a fixed floor (rack space, network, ops) plus a term
    proportional to effective compute (cores × per-core speed). Energy is
    priced separately at a typical industrial $/kWh, so capping power or
    idling a faulted machine genuinely saves money in reports.
    """
    rates = tuple(
        (sku.name, round(0.06 + 0.0045 * sku.cores * sku.speed_factor, 4))
        for sku in DEFAULT_SKUS
    )
    return PriceBook(rates=rates)
