"""A/B analysis over experiment telemetry.

Takes a group assignment (or a time-slicing schedule) plus a Performance
Monitor and produces per-metric comparisons with Student's t-tests — the
exact shape of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiment.design import GroupAssignment, TimeSlice
from repro.stats.ttest import TTestResult, students_t_test
from repro.telemetry.monitor import PerformanceMonitor
from repro.utils.errors import ExperimentError

__all__ = ["MetricComparison", "ABReport", "compare_groups", "compare_time_slices"]


@dataclass(frozen=True, slots=True)
class MetricComparison:
    """Control vs experiment on one metric (a row of Table 4)."""

    metric: str
    control_mean: float
    experiment_mean: float
    test: TTestResult

    @property
    def pct_change(self) -> float:
        """Experiment vs control, as a fraction."""
        if self.control_mean == 0:
            return 0.0
        return (self.experiment_mean - self.control_mean) / abs(self.control_mean)

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the t-test rejects equality at ``alpha``."""
        return self.test.significant(alpha)


@dataclass
class ABReport:
    """All metric comparisons of one experiment."""

    name: str
    comparisons: list[MetricComparison]
    n_control: int
    n_experiment: int

    def comparison(self, metric: str) -> MetricComparison:
        """Look up one metric's comparison."""
        for entry in self.comparisons:
            if entry.metric == metric:
                return entry
        raise KeyError(f"metric {metric!r} not in report {self.name!r}")

    def winner(self, metric: str, higher_is_better: bool = True) -> str:
        """'experiment', 'control', or 'tie' (insignificant difference)."""
        entry = self.comparison(metric)
        if not entry.significant():
            return "tie"
        experiment_wins = entry.experiment_mean > entry.control_mean
        if not higher_is_better:
            experiment_wins = not experiment_wins
        return "experiment" if experiment_wins else "control"


def _per_machine_daily(monitor: PerformanceMonitor, metric: str) -> np.ndarray:
    """Observation vector for testing: machine-day values of the metric.

    Daily aggregation keeps observations roughly independent (hour-level
    records of one machine are strongly autocorrelated, which would inflate
    t-values).
    """
    aggregates = monitor.daily_aggregates()
    field_map = {
        "TotalDataRead": lambda a: a.total_data_read_bytes,
        "AverageTaskSeconds": lambda a: a.avg_task_seconds,
        "NumberOfTasks": lambda a: float(a.tasks_finished),
        "CpuUtilization": lambda a: a.cpu_utilization,
        "AverageRunningContainers": lambda a: a.avg_running_containers,
        "BytesPerSecond": lambda a: a.bytes_per_second,
        "BytesPerCpuTime": lambda a: a.bytes_per_cpu_time,
    }
    if metric in field_map:
        return np.array([field_map[metric](a) for a in aggregates])
    # Fall back to hour-level values for metrics without a daily aggregate.
    return monitor.metric(metric)


def compare_groups(
    name: str,
    monitor: PerformanceMonitor,
    assignment: GroupAssignment,
    metrics: tuple[str, ...],
    hour_range: tuple[int, int] | None = None,
    daily: bool = True,
) -> ABReport:
    """Compare control vs experiment machines on each metric."""
    base = monitor if hour_range is None else monitor.filter(hour_range=hour_range)
    control = base.filter(machine_ids=assignment.control_ids)
    experiment = base.filter(machine_ids=assignment.experiment_ids)
    if len(control) < 2 or len(experiment) < 2:
        raise ExperimentError(
            f"experiment {name!r}: not enough records "
            f"({len(control)} control, {len(experiment)} experiment)"
        )
    comparisons = []
    for metric in metrics:
        c = _per_machine_daily(control, metric) if daily else control.metric(metric)
        e = _per_machine_daily(experiment, metric) if daily else experiment.metric(metric)
        test = students_t_test(c, e)
        comparisons.append(
            MetricComparison(
                metric=metric,
                control_mean=float(np.mean(c)),
                experiment_mean=float(np.mean(e)),
                test=test,
            )
        )
    return ABReport(
        name=name,
        comparisons=comparisons,
        n_control=len(control),
        n_experiment=len(experiment),
    )


def compare_time_slices(
    name: str,
    monitor: PerformanceMonitor,
    schedule: list[TimeSlice],
    metrics: tuple[str, ...],
) -> ABReport:
    """Compare the control vs experiment *windows* of a time-slicing design."""
    control_hours = {
        h
        for s in schedule
        if s.variant == "control"
        for h in range(int(s.start_hour), int(s.end_hour))
    }
    experiment_hours = {
        h
        for s in schedule
        if s.variant == "experiment"
        for h in range(int(s.start_hour), int(s.end_hour))
    }
    control = monitor.filter(predicate=lambda r: r.hour in control_hours)
    experiment = monitor.filter(predicate=lambda r: r.hour in experiment_hours)
    if len(control) < 2 or len(experiment) < 2:
        raise ExperimentError(f"time-sliced experiment {name!r} lacks telemetry")
    comparisons = []
    for metric in metrics:
        c = control.metric(metric)
        e = experiment.metric(metric)
        test = students_t_test(c, e)
        comparisons.append(
            MetricComparison(
                metric=metric,
                control_mean=float(np.mean(c)),
                experiment_mean=float(np.mean(e)),
                test=test,
            )
        )
    return ABReport(
        name=name, comparisons=comparisons, n_control=len(control),
        n_experiment=len(experiment),
    )
