"""Experiment module: designs and A/B analyses for experimental tuning."""

from repro.experiment.ab import (
    ABReport,
    MetricComparison,
    compare_groups,
    compare_time_slices,
)
from repro.experiment.design import (
    GroupAssignment,
    TimeSlice,
    hybrid_setting,
    ideal_setting,
    time_slicing_schedule,
)
from repro.experiment.power_capping import (
    PowerCappingGroups,
    PowerCappingOutcome,
    analyze_power_capping,
    apply_power_capping_groups,
    assign_power_capping_groups,
    revert_power_capping_groups,
)

__all__ = [
    "ABReport",
    "MetricComparison",
    "compare_groups",
    "compare_time_slices",
    "GroupAssignment",
    "TimeSlice",
    "hybrid_setting",
    "ideal_setting",
    "time_slicing_schedule",
    "PowerCappingGroups",
    "PowerCappingOutcome",
    "analyze_power_capping",
    "apply_power_capping_groups",
    "assign_power_capping_groups",
    "revert_power_capping_groups",
]
