"""Experiment designs: ideal, time-slicing, and hybrid settings (Section 7).

* **Ideal**: control and experiment machines interleaved within the same
  racks ("choosing every other machine in the same rack"), so both groups see
  near-identical workloads, hardware age, and data placement.
* **Time-slicing**: one machine group alternates configurations over fixed
  windows; comparison is across time intervals. Popular but fragile —
  workloads drift between intervals.
* **Hybrid**: different machine groups get different configurations; requires
  matched groups, long windows, and load-insensitive (normalized) metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine
from repro.utils.errors import ExperimentError

__all__ = [
    "GroupAssignment",
    "ideal_setting",
    "TimeSlice",
    "time_slicing_schedule",
    "hybrid_setting",
]


@dataclass(frozen=True, slots=True)
class GroupAssignment:
    """Control/experiment machine assignment."""

    control: list[Machine]
    experiment: list[Machine]

    @property
    def control_ids(self) -> set[int]:
        """Machine ids of the control group."""
        return {m.machine_id for m in self.control}

    @property
    def experiment_ids(self) -> set[int]:
        """Machine ids of the experiment group."""
        return {m.machine_id for m in self.experiment}


def ideal_setting(cluster: Cluster, racks: list[int]) -> GroupAssignment:
    """Alternate machines within each selected rack into control/experiment.

    Validates the racks are homogeneous (same SKU and software) — otherwise
    interleaving would not control hardware.
    """
    if not racks:
        raise ExperimentError("ideal setting needs at least one rack")
    control: list[Machine] = []
    experiment: list[Machine] = []
    for rack in racks:
        machines = cluster.machines_in_rack(rack)
        if len(machines) < 2:
            raise ExperimentError(f"rack {rack} has fewer than 2 machines")
        groups = {m.group_key for m in machines}
        if len(groups) != 1:
            raise ExperimentError(
                f"rack {rack} is heterogeneous ({[g.label for g in groups]}); "
                "the ideal setting requires homogeneous racks"
            )
        for index, machine in enumerate(machines):
            (control if index % 2 == 0 else experiment).append(machine)
    return GroupAssignment(control=control, experiment=experiment)


@dataclass(frozen=True, slots=True)
class TimeSlice:
    """One window of a time-slicing schedule."""

    start_hour: float
    end_hour: float
    variant: str  # "control" | "experiment"


def time_slicing_schedule(
    duration_hours: float,
    interval_hours: float = 5.0,
    start_variant: str = "control",
) -> list[TimeSlice]:
    """Alternate variants every ``interval_hours`` over the duration.

    The paper notes a 5-hour interval is chosen "instead of 24 hours to avoid
    day of week effects" — an interval that divides 24 evenly would pin each
    variant to fixed hours of the day.
    """
    if duration_hours <= 0 or interval_hours <= 0:
        raise ExperimentError("durations must be positive")
    if start_variant not in ("control", "experiment"):
        raise ExperimentError("start_variant must be 'control' or 'experiment'")
    slices: list[TimeSlice] = []
    variant = start_variant
    start = 0.0
    while start < duration_hours:
        end = min(start + interval_hours, duration_hours)
        slices.append(TimeSlice(start_hour=start, end_hour=end, variant=variant))
        variant = "experiment" if variant == "control" else "control"
        start = end
    return slices


def hybrid_setting(
    cluster: Cluster,
    sku: str,
    group_size: int,
    n_groups: int = 2,
    software: str | None = None,
) -> list[list[Machine]]:
    """Build ``n_groups`` matched machine groups of one SKU (hybrid setting).

    Whole *chassis* are dealt round-robin across groups: power capping acts
    at chassis granularity (Section 7.2: "all machines in the same chassis
    have to be capped at the same level"), so groups must never share a
    chassis — otherwise capping one group contaminates the others' baselines.
    Dealing chassis cyclically still interleaves groups across racks, keeping
    their hardware/placement composition matched.
    """
    if group_size < 1 or n_groups < 2:
        raise ExperimentError("need group_size >= 1 and n_groups >= 2")
    candidates = [
        m
        for m in cluster.machines
        if m.sku.name == sku and (software is None or m.software.name == software)
    ]
    needed = group_size * n_groups
    if len(candidates) < needed:
        raise ExperimentError(
            f"not enough {sku} machines for {n_groups} groups of {group_size} "
            f"(have {len(candidates)}, need {needed})"
        )
    chassis_buckets: dict[int, list[Machine]] = {}
    for machine in sorted(candidates, key=lambda m: (m.chassis, m.machine_id)):
        chassis_buckets.setdefault(machine.chassis, []).append(machine)
    groups: list[list[Machine]] = [[] for _ in range(n_groups)]
    for index, chassis in enumerate(sorted(chassis_buckets)):
        target = groups[index % n_groups]
        if len(target) < group_size:
            target.extend(chassis_buckets[chassis])
    short = [i for i, group in enumerate(groups) if len(group) < group_size]
    if short:
        raise ExperimentError(
            f"cannot build {n_groups} chassis-aligned groups of {group_size} "
            f"{sku} machines; groups {short} came up short — lower group_size "
            "or grow the fleet"
        )
    return [group[:group_size] for group in groups]
