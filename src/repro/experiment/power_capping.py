"""The four-group power-capping experiment design (Section 7.2).

For each capping level, four matched machine groups of one SKU run
simultaneously:

* **Group A** — no capping, Feature off (the baseline of Figure 15)
* **Group B** — no capping, Feature on
* **Group C** — capping, Feature off ("Capping" bars)
* **Group D** — capping, Feature on ("Feature + Capping" bars)

The analysis benchmarks every group against Group A on the normalized,
load-insensitive metrics Bytes per CPU Time and Bytes per Second.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine
from repro.experiment.design import hybrid_setting
from repro.flighting.build import FeatureBuild, PowerCapBuild
from repro.telemetry.monitor import PerformanceMonitor
from repro.utils.errors import ExperimentError

__all__ = ["PowerCappingGroups", "PowerCappingOutcome", "assign_power_capping_groups",
           "apply_power_capping_groups", "analyze_power_capping"]

GROUP_NAMES = ("A", "B", "C", "D")


@dataclass
class PowerCappingGroups:
    """The four matched groups of one capping round."""

    sku: str
    capping_level: float
    groups: dict[str, list[Machine]]

    def ids(self, name: str) -> set[int]:
        """Machine ids of one group."""
        return {m.machine_id for m in self.groups[name]}


@dataclass(frozen=True, slots=True)
class PowerCappingOutcome:
    """Per-group impact vs Group A on one metric, for one capping level."""

    metric: str
    capping_level: float
    baseline_mean: float
    impact_by_group: dict[str, float]  # relative change vs group A


def assign_power_capping_groups(
    cluster: Cluster, sku: str, group_size: int, capping_level: float
) -> PowerCappingGroups:
    """Select four matched groups of ``sku`` machines (Feature-capable SKUs only)."""
    groups = hybrid_setting(cluster, sku=sku, group_size=group_size, n_groups=4)
    sample = groups[0][0]
    if not sample.sku.feature_capable:
        raise ExperimentError(
            f"SKU {sku} does not support the processor Feature; "
            "pick a Gen 4.x SKU for the power-capping experiment"
        )
    return PowerCappingGroups(
        sku=sku,
        capping_level=capping_level,
        groups=dict(zip(GROUP_NAMES, groups, strict=True)),
    )


def apply_power_capping_groups(
    cluster: Cluster, assignment: PowerCappingGroups
) -> list[object]:
    """Apply caps/Feature per group; returns the builds (for later revert)."""
    builds: list[object] = []
    feature_on_b = FeatureBuild(enabled=True)
    feature_on_b.apply(cluster, assignment.groups["B"])
    builds.append((feature_on_b, assignment.groups["B"]))

    cap_c = PowerCapBuild(capping_level=assignment.capping_level)
    cap_c.apply(cluster, assignment.groups["C"])
    builds.append((cap_c, assignment.groups["C"]))

    cap_d = PowerCapBuild(capping_level=assignment.capping_level)
    cap_d.apply(cluster, assignment.groups["D"])
    builds.append((cap_d, assignment.groups["D"]))
    feature_on_d = FeatureBuild(enabled=True)
    feature_on_d.apply(cluster, assignment.groups["D"])
    builds.append((feature_on_d, assignment.groups["D"]))
    return builds


def revert_power_capping_groups(cluster: Cluster, builds: list[object]) -> None:
    """Undo :func:`apply_power_capping_groups`."""
    for build, machines in reversed(builds):
        build.revert(cluster, machines)


def analyze_power_capping(
    monitor: PerformanceMonitor,
    assignment: PowerCappingGroups,
    metrics: tuple[str, ...] = ("BytesPerCpuTime", "BytesPerSecond"),
    hour_range: tuple[int, int] | None = None,
) -> list[PowerCappingOutcome]:
    """Benchmark groups B/C/D against the uncapped, Feature-off Group A."""
    base = monitor if hour_range is None else monitor.filter(hour_range=hour_range)
    outcomes = []
    for metric in metrics:
        group_means: dict[str, float] = {}
        for name in GROUP_NAMES:
            records = base.filter(machine_ids=assignment.ids(name))
            if len(records) < 2:
                raise ExperimentError(
                    f"power capping group {name} has too little telemetry"
                )
            group_means[name] = float(np.mean(records.metric(metric)))
        baseline = group_means["A"]
        if baseline <= 0:
            raise ExperimentError(f"group A produced no signal for {metric}")
        outcomes.append(
            PowerCappingOutcome(
                metric=metric,
                capping_level=assignment.capping_level,
                baseline_mean=baseline,
                impact_by_group={
                    name: (group_means[name] - baseline) / baseline
                    for name in GROUP_NAMES
                },
            )
        )
    return outcomes
