"""Deterministic fault injection for the simulated fleet.

Production fleets lose machines mid-rollout and grow stragglers mid-soak;
an immortal simulated fleet cannot exercise the gate → checkpoint → resume
machinery those events trip. This package makes failure a first-class,
reproducible scenario ingredient:

* :mod:`repro.faults.plan` — frozen, picklable :class:`FaultPlan` /
  :class:`OutageSpec` / :class:`StragglerSpec` / :class:`MachineSelector`
  value objects (what fails, when, for how long, targeted at which slice
  of the fleet).
* :mod:`repro.faults.injector` — :class:`FaultInjector`, compiling a plan
  into typed simulator crash/recover/slowdown events with all randomness
  drawn from the plan's own seed.

Fault-free runs never dispatch a fault event, so the plane costs nothing
when unused and cannot perturb existing results.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, MachineSelector, OutageSpec, StragglerSpec

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "MachineSelector",
    "OutageSpec",
    "StragglerSpec",
]
