"""Declarative, deterministic fault plans.

A :class:`FaultPlan` is a frozen, picklable description of everything that
goes wrong with the fleet during one simulation window: availability-zone
outages (machines crash hard and come back later, possibly with a
per-machine delayed recovery) and straggler episodes (machines keep serving
but run slower by a factor). Plans are *data*, not behaviour: the
:class:`~repro.faults.injector.FaultInjector` compiles a plan into typed
simulator events, drawing every random choice from the plan's own seed so

* the same plan injects the same faults in any process (serial, pooled, or
  queue-backed execution stays bit-identical), and
* a plan rides on a :class:`~repro.service.scenarios.Scenario` into the
  simulation cache key via its ``repr`` — two scenarios differing only in
  their faults can never alias a cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MachineSelector", "OutageSpec", "StragglerSpec", "FaultPlan"]


@dataclass(frozen=True)
class MachineSelector:
    """Which machines a fault targets.

    All set criteria must match (``None`` matches everything), then
    ``fraction`` of the matching machines — chosen deterministically from
    the plan seed — are actually hit. The default selector targets the
    whole fleet.
    """

    sku: str | None = None
    software: str | None = None
    subcluster: int | None = None
    rack: int | None = None
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")

    def matches(self, machine) -> bool:
        """True when ``machine`` satisfies every set criterion."""
        if self.sku is not None and machine.sku.name != self.sku:
            return False
        if self.software is not None and machine.software.name != self.software:
            return False
        if self.subcluster is not None and machine.subcluster != self.subcluster:
            return False
        if self.rack is not None and machine.rack != self.rack:
            return False
        return True


@dataclass(frozen=True)
class OutageSpec:
    """A hard outage: selected machines crash at ``at_hour`` and recover.

    ``recovery_jitter_hours`` > 0 models delayed recovery — each machine
    draws an independent exponential extra delay with that mean (repair
    crews don't finish a whole zone at once), from the plan's seeded
    stream.
    """

    at_hour: float
    duration_hours: float
    selector: MachineSelector = field(default_factory=MachineSelector)
    recovery_jitter_hours: float = 0.0
    name: str = "outage"

    def __post_init__(self) -> None:
        if self.at_hour < 0.0:
            raise ValueError(f"at_hour must be non-negative, got {self.at_hour}")
        if self.duration_hours <= 0.0:
            raise ValueError(
                f"duration_hours must be positive, got {self.duration_hours}"
            )
        if self.recovery_jitter_hours < 0.0:
            raise ValueError("recovery_jitter_hours must be non-negative")


@dataclass(frozen=True)
class StragglerSpec:
    """A straggler episode: selected machines slow down by ``slowdown``.

    The machines keep accepting and serving work — only task durations
    stretch — which is exactly the tail-skew failure mode that poisons a
    rollout wave's soak window without tripping availability alarms.
    """

    at_hour: float
    duration_hours: float
    slowdown: float
    selector: MachineSelector = field(default_factory=MachineSelector)
    name: str = "straggler"

    def __post_init__(self) -> None:
        if self.at_hour < 0.0:
            raise ValueError(f"at_hour must be non-negative, got {self.at_hour}")
        if self.duration_hours <= 0.0:
            raise ValueError(
                f"duration_hours must be positive, got {self.duration_hours}"
            )
        if self.slowdown <= 1.0:
            raise ValueError(
                f"slowdown must exceed 1.0 (use no event for nominal speed), "
                f"got {self.slowdown}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong during one simulation window.

    Frozen and built from primitives only, so a plan pickles across pool
    workers, hashes into cache keys via ``repr``, and compares by value.
    An empty plan injects nothing — runs carrying one are bit-identical to
    fault-free runs.
    """

    outages: tuple[OutageSpec, ...] = ()
    stragglers: tuple[StragglerSpec, ...] = ()
    seed: int = 0

    @property
    def is_empty(self) -> bool:
        """True when the plan schedules no fault at all."""
        return not self.outages and not self.stragglers

    def describe(self) -> str:
        """One-line human summary of the plan."""
        if self.is_empty:
            return "no faults"
        parts = [
            f"{spec.name}@{spec.at_hour:g}h for {spec.duration_hours:g}h"
            for spec in self.outages
        ]
        parts.extend(
            f"{spec.name}@{spec.at_hour:g}h ×{spec.slowdown:g} "
            f"for {spec.duration_hours:g}h"
            for spec in self.stragglers
        )
        return ", ".join(parts)
