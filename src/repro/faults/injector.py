"""Compiles a :class:`~repro.faults.plan.FaultPlan` into simulator events.

The injector owns all fault randomness: machine selection under a
fractional selector and per-machine delayed-recovery draws come from
``random.Random`` streams derived from the plan seed and each spec's index,
never from the simulator's own :class:`~repro.utils.rng.RngStreams`. That
separation is what keeps a fault-free run bit-identical whether or not the
fault plane is linked in, and what makes the same plan reproduce the same
faults across serial, pooled, and queue-backed execution.
"""

from __future__ import annotations

import random

from repro.faults.plan import FaultPlan, MachineSelector
from repro.utils.rng import derive_seed
from repro.utils.units import SECONDS_PER_HOUR

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules one plan's crash/recover/slowdown events on a simulator."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    def schedule_on(self, simulator) -> int:
        """Push every event of the plan onto ``simulator``'s heap.

        Must run before ``simulator.run`` (it is the body of a scenario's
        actions hook). Returns the number of events scheduled.
        """
        events = 0
        for index, outage in enumerate(self.plan.outages):
            rng = self._stream("outage", index, outage.name)
            start = outage.at_hour * SECONDS_PER_HOUR
            base_down = outage.duration_hours * SECONDS_PER_HOUR
            for machine in self._select(simulator.cluster, outage.selector, rng):
                down = base_down
                if outage.recovery_jitter_hours > 0.0:
                    down += rng.expovariate(
                        1.0 / (outage.recovery_jitter_hours * SECONDS_PER_HOUR)
                    )
                simulator.schedule_crash(start, machine)
                simulator.schedule_recover(start + down, machine)
                events += 2
        for index, straggler in enumerate(self.plan.stragglers):
            rng = self._stream("straggler", index, straggler.name)
            start = straggler.at_hour * SECONDS_PER_HOUR
            end = start + straggler.duration_hours * SECONDS_PER_HOUR
            for machine in self._select(
                simulator.cluster, straggler.selector, rng
            ):
                simulator.schedule_slowdown(start, machine, straggler.slowdown)
                simulator.schedule_slowdown(end, machine, 1.0)
                events += 2
        return events

    def _stream(self, kind: str, index: int, name: str) -> random.Random:
        """An independent seeded stream per fault spec (stable across runs)."""
        return random.Random(
            derive_seed(self.plan.seed, f"fault:{kind}:{index}:{name}")
        )

    @staticmethod
    def _select(cluster, selector: MachineSelector, rng: random.Random) -> list:
        """The machines a selector hits, in stable machine order.

        A fractional selector samples from the matching machines with the
        spec's stream, then restores machine order so downstream event
        scheduling is independent of the sample's internal ordering.
        """
        matching = [m for m in cluster.machines if selector.matches(m)]
        if selector.fraction >= 1.0 or len(matching) <= 1:
            return matching
        count = max(1, round(selector.fraction * len(matching)))
        chosen = rng.sample(matching, min(count, len(matching)))
        chosen.sort(key=lambda machine: machine.machine_id)
        return chosen
