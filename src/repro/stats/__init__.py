"""Statistics substrate: t-tests, treatment effects, bootstrap, descriptives.

The t distribution itself is implemented from scratch in
:mod:`repro.stats.distributions` and validated against scipy in the tests.
"""

from repro.stats.bootstrap import BootstrapResult, bootstrap_ci
from repro.stats.describe import Description, describe, percentile
from repro.stats.distributions import (
    regularized_incomplete_beta,
    student_t_cdf,
    student_t_sf,
)
from repro.stats.treatment import (
    TreatmentEffect,
    before_after_effect,
    difference_in_differences,
    paired_effect,
)
from repro.stats.ttest import (
    TTestResult,
    one_sample_t_test,
    students_t_test,
    welch_t_test,
)

__all__ = [
    "BootstrapResult",
    "bootstrap_ci",
    "Description",
    "describe",
    "percentile",
    "regularized_incomplete_beta",
    "student_t_cdf",
    "student_t_sf",
    "TreatmentEffect",
    "before_after_effect",
    "difference_in_differences",
    "paired_effect",
    "TTestResult",
    "one_sample_t_test",
    "students_t_test",
    "welch_t_test",
]
