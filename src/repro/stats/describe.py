"""Descriptive statistics helpers shared by views, models, and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Description", "describe", "percentile"]


@dataclass(frozen=True, slots=True)
class Description:
    """Summary statistics of one sample."""

    n: int
    mean: float
    std: float
    minimum: float
    p5: float
    p25: float
    median: float
    p75: float
    p95: float
    p99: float
    maximum: float


def describe(values: np.ndarray) -> Description:
    """Summarize a sample (ddof=1 standard deviation; 0 for singletons)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot describe an empty sample")
    std = float(values.std(ddof=1)) if values.size > 1 else 0.0
    pct = np.percentile(values, [5, 25, 50, 75, 95, 99])
    return Description(
        n=int(values.size),
        mean=float(values.mean()),
        std=std,
        minimum=float(values.min()),
        p5=float(pct[0]),
        p25=float(pct[1]),
        median=float(pct[2]),
        p75=float(pct[3]),
        p95=float(pct[4]),
        p99=float(pct[5]),
        maximum=float(values.max()),
    )


def percentile(values: np.ndarray, q: float) -> float:
    """Single percentile with validation (q in [0, 100])."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot take a percentile of an empty sample")
    return float(np.percentile(values, q))
