"""Student's t distribution, implemented from scratch.

The paper leans on Student's t-test [48] for every significance call
(Sections 5.2.2 and 7.1). We implement the t CDF via the regularized
incomplete beta function (continued-fraction evaluation, Numerical Recipes
style) rather than importing it, and cross-check against ``scipy.stats`` in
the test suite.
"""

from __future__ import annotations

import math

__all__ = ["log_beta", "regularized_incomplete_beta", "student_t_cdf", "student_t_sf"]

_MAX_ITERATIONS = 300
_EPSILON = 3.0e-12
_TINY = 1.0e-300


def log_beta(a: float, b: float) -> float:
    """Natural log of the Beta function B(a, b)."""
    if a <= 0 or b <= 0:
        raise ValueError("log_beta requires positive arguments")
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Continued-fraction kernel for the incomplete beta (NR 'betacf')."""
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _TINY:
        d = _TINY
    d = 1.0 / d
    h = d
    for m in range(1, _MAX_ITERATIONS + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + aa / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + aa / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPSILON:
            return h
    raise ArithmeticError(
        f"incomplete beta continued fraction failed to converge (a={a}, b={b}, x={x})"
    )


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b) for x in [0, 1]."""
    if a <= 0 or b <= 0:
        raise ValueError("shape parameters must be positive")
    if x < 0.0 or x > 1.0:
        raise ValueError(f"x must be in [0, 1], got {x}")
    if x == 0.0:
        return 0.0
    if x == 1.0:
        return 1.0
    ln_front = (
        a * math.log(x) + b * math.log(1.0 - x) - log_beta(a, b)
    )
    front = math.exp(ln_front)
    # Use the continued fraction directly where it converges fast, else use
    # the symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def student_t_cdf(t: float, df: float) -> float:
    """CDF of Student's t distribution with ``df`` degrees of freedom.

    Two complementary incomplete-beta formulations are used so precision
    holds at both ends: for small |t| the argument ``t²/(df+t²)`` is computed
    directly (no catastrophic cancellation near 0.5), while for large |t| the
    tail form ``I_{df/(df+t²)}`` keeps tiny p-values exact.
    """
    if df <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {df}")
    if t == 0.0:
        return 0.5
    tt = t * t
    if tt < df:
        # Small |t|: CDF = 0.5 ± 0.5·I_{t²/(df+t²)}(1/2, df/2).
        x = tt / (df + tt)
        half_body = 0.5 * regularized_incomplete_beta(0.5, df / 2.0, x)
        return 0.5 + half_body if t > 0 else 0.5 - half_body
    x = df / (df + tt)
    tail = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5, x)
    return 1.0 - tail if t > 0 else tail


def student_t_sf(t: float, df: float) -> float:
    """Survival function 1 − CDF (numerically direct for large |t|)."""
    return student_t_cdf(-t, df)
