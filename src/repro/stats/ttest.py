"""Student's and Welch's two-sample t-tests.

The paper evaluates every before/after and control/experiment comparison with
Student's t-test and reports the t-value alongside the percentage change
(e.g. Table 4: +10.9% Total Data Read, t = 40.4). :class:`TTestResult`
carries exactly those quantities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.stats.distributions import student_t_sf

__all__ = ["TTestResult", "students_t_test", "welch_t_test", "one_sample_t_test"]


@dataclass(frozen=True, slots=True)
class TTestResult:
    """Outcome of a t-test plus the effect sizes the paper reports."""

    t_value: float
    df: float
    p_value: float
    mean_a: float
    mean_b: float

    @property
    def diff(self) -> float:
        """Absolute difference of means (b − a)."""
        return self.mean_b - self.mean_a

    @property
    def pct_change(self) -> float:
        """Relative change of b versus a, as a fraction (0.109 = +10.9%)."""
        if self.mean_a == 0:
            return math.inf if self.mean_b != 0 else 0.0
        return (self.mean_b - self.mean_a) / abs(self.mean_a)

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the two-sided p-value falls below ``alpha``."""
        return self.p_value < alpha


def _validate(sample: np.ndarray, name: str, min_n: int = 2) -> np.ndarray:
    sample = np.asarray(sample, dtype=float)
    if sample.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional")
    if sample.size < min_n:
        raise ValueError(f"{name} needs at least {min_n} observations, got {sample.size}")
    return sample


def students_t_test(a: np.ndarray, b: np.ndarray) -> TTestResult:
    """Two-sample Student's t-test (pooled variance, equal-variance assumption)."""
    a = _validate(a, "sample a")
    b = _validate(b, "sample b")
    na, nb = a.size, b.size
    va, vb = a.var(ddof=1), b.var(ddof=1)
    df = na + nb - 2
    pooled = ((na - 1) * va + (nb - 1) * vb) / df
    se = math.sqrt(pooled * (1.0 / na + 1.0 / nb))
    if se == 0.0:
        t = 0.0 if a.mean() == b.mean() else math.inf
    else:
        t = (b.mean() - a.mean()) / se
    p = 2.0 * student_t_sf(abs(t), df) if math.isfinite(t) else 0.0
    return TTestResult(t_value=t, df=df, p_value=p, mean_a=float(a.mean()),
                       mean_b=float(b.mean()))


def welch_t_test(a: np.ndarray, b: np.ndarray) -> TTestResult:
    """Welch's t-test (no equal-variance assumption; Welch–Satterthwaite df)."""
    a = _validate(a, "sample a")
    b = _validate(b, "sample b")
    na, nb = a.size, b.size
    va, vb = a.var(ddof=1), b.var(ddof=1)
    se_sq = va / na + vb / nb
    if se_sq == 0.0:
        t = 0.0 if a.mean() == b.mean() else math.inf
        df = float(na + nb - 2)
    else:
        t = (b.mean() - a.mean()) / math.sqrt(se_sq)
        df = se_sq**2 / (
            (va / na) ** 2 / (na - 1) + (vb / nb) ** 2 / (nb - 1)
        )
    p = 2.0 * student_t_sf(abs(t), df) if math.isfinite(t) else 0.0
    return TTestResult(t_value=t, df=df, p_value=p, mean_a=float(a.mean()),
                       mean_b=float(b.mean()))


def one_sample_t_test(sample: np.ndarray, popmean: float) -> TTestResult:
    """One-sample t-test of ``mean(sample) == popmean``."""
    sample = _validate(sample, "sample")
    n = sample.size
    se = sample.std(ddof=1) / math.sqrt(n)
    if se == 0.0:
        t = 0.0 if sample.mean() == popmean else math.inf
    else:
        t = (sample.mean() - popmean) / se
    df = n - 1
    p = 2.0 * student_t_sf(abs(t), df) if math.isfinite(t) else 0.0
    return TTestResult(t_value=t, df=df, p_value=p, mean_a=popmean,
                       mean_b=float(sample.mean()))
