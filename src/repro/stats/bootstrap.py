"""Bootstrap confidence intervals.

Used wherever the paper quantifies "natural variance" without a parametric
assumption — e.g. the spread of the per-core usage slopes feeding the
Monte-Carlo SKU-design study (Section 6.1).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

__all__ = ["BootstrapResult", "bootstrap_ci"]


@dataclass(frozen=True, slots=True)
class BootstrapResult:
    """A point estimate with a percentile bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    @property
    def width(self) -> float:
        """Interval width (high − low)."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def bootstrap_ci(
    values: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> BootstrapResult:
    """Percentile bootstrap CI for ``statistic`` of ``values``."""
    values = np.asarray(values, dtype=float)
    if values.size < 2:
        raise ValueError("bootstrap needs at least two observations")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 10:
        raise ValueError("n_resamples must be at least 10")
    if rng is None:
        rng = np.random.default_rng(0)
    estimates = np.empty(n_resamples)
    n = values.size
    for i in range(n_resamples):
        resample = values[rng.integers(0, n, size=n)]
        estimates[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        estimate=float(statistic(values)),
        low=float(np.percentile(estimates, 100 * alpha)),
        high=float(np.percentile(estimates, 100 * (1 - alpha))),
        confidence=confidence,
        n_resamples=n_resamples,
    )
