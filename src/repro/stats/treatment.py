"""Treatment-effect estimation for before/after and control/experiment data.

Section 5.2.2: "We use treatment effects to evaluate the performance changes
[28] during the two periods with significance tests." We provide the two
estimators the paper's deployments need:

* :func:`before_after_effect` — difference in means across two periods on the
  same population (the production roll-out evaluation);
* :func:`difference_in_differences` — nets out common time trends using an
  untreated control group (the hybrid experiment setting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.ttest import TTestResult, students_t_test, welch_t_test

__all__ = [
    "TreatmentEffect",
    "before_after_effect",
    "paired_effect",
    "population_effect",
    "difference_in_differences",
]


@dataclass(frozen=True, slots=True)
class TreatmentEffect:
    """An estimated effect with its significance test."""

    effect: float
    relative_effect: float
    test: TTestResult

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the underlying test rejects at level ``alpha``."""
        return self.test.significant(alpha)


def before_after_effect(
    before: np.ndarray, after: np.ndarray, equal_variance: bool = True
) -> TreatmentEffect:
    """Mean effect of a deployment: ``after`` minus ``before``.

    ``equal_variance`` selects Student's (paper default) vs Welch's test.
    """
    test = students_t_test(before, after) if equal_variance else welch_t_test(before, after)
    return TreatmentEffect(
        effect=test.diff, relative_effect=test.pct_change, test=test
    )


def paired_effect(before: np.ndarray, after: np.ndarray) -> TreatmentEffect:
    """Paired (matched-unit) treatment effect.

    ``before[i]`` and ``after[i]`` must belong to the same unit (e.g. the
    same machine observed under the old and new configuration). Pairing
    removes cross-unit heterogeneity — essential on a fleet where a Gen 4.2
    machine reads an order of magnitude more data per day than a Gen 1.1 —
    and is the fixed-effects form of the paper's treatment-effect evaluation.
    """
    before = np.asarray(before, dtype=float)
    after = np.asarray(after, dtype=float)
    if before.size != after.size:
        raise ValueError(
            f"paired samples must align: {before.size} before vs {after.size} after"
        )
    from repro.stats.ttest import one_sample_t_test

    diffs = after - before
    test = one_sample_t_test(diffs, popmean=0.0)
    effect = float(diffs.mean())
    base = abs(float(before.mean()))
    relative = effect / base if base > 0 else float("inf") if effect else 0.0
    # Re-anchor the reported means on the raw samples (the one-sample test
    # reports the mean difference as mean_b).
    anchored = TTestResult(
        t_value=test.t_value,
        df=test.df,
        p_value=test.p_value,
        mean_a=float(before.mean()),
        mean_b=float(after.mean()),
    )
    return TreatmentEffect(effect=effect, relative_effect=relative, test=anchored)


def population_effect(
    control: np.ndarray, treated: np.ndarray, equal_variance: bool = False
) -> TreatmentEffect:
    """Cross-population effect inside one observation window.

    ``treated`` and ``control`` are samples of the same metric drawn from two
    disjoint unit populations over the *same* period — e.g. machines already
    covered by a staged rollout vs machines not yet covered, inside one
    wave's soak window. Defaults to Welch's test: a heterogeneous fleet gives
    the two arms different variances by construction.

    Degenerate arms (fewer than two observations on either side — a one-hour
    wave window, or a fleet-wide wave with no control population left) yield
    the mean contrast with an insignificant test (p = 1) instead of raising,
    so per-wave instrumentation never aborts a rollout.
    """
    control = np.asarray(control, dtype=float)
    treated = np.asarray(treated, dtype=float)
    if control.size < 2 or treated.size < 2:
        mean_c = float(control.mean()) if control.size else 0.0
        mean_t = float(treated.mean()) if treated.size else 0.0
        effect = mean_t - mean_c
        base = abs(mean_c)
        relative = effect / base if base > 0 else float("inf") if effect else 0.0
        return TreatmentEffect(
            effect=effect,
            relative_effect=relative,
            test=TTestResult(
                t_value=0.0, df=0.0, p_value=1.0, mean_a=mean_c, mean_b=mean_t
            ),
        )
    test = (
        students_t_test(control, treated)
        if equal_variance
        else welch_t_test(control, treated)
    )
    return TreatmentEffect(
        effect=test.diff, relative_effect=test.pct_change, test=test
    )


def difference_in_differences(
    control_before: np.ndarray,
    control_after: np.ndarray,
    treated_before: np.ndarray,
    treated_after: np.ndarray,
) -> TreatmentEffect:
    """Difference-in-differences estimate of a treatment effect.

    Effect = (treated_after − treated_before) − (control_after − control_before).
    Significance is assessed by a Welch test on the per-observation change
    proxies: treated deltas vs control deltas relative to their period means.
    """
    control_before = np.asarray(control_before, dtype=float)
    control_after = np.asarray(control_after, dtype=float)
    treated_before = np.asarray(treated_before, dtype=float)
    treated_after = np.asarray(treated_after, dtype=float)

    control_shift = control_after.mean() - control_before.mean()
    treated_shift = treated_after.mean() - treated_before.mean()
    effect = treated_shift - control_shift

    # Counterfactual-adjusted samples: remove the control trend from the
    # treated "after" sample, then test against the treated "before" sample.
    adjusted_after = treated_after - control_shift
    test = welch_t_test(treated_before, adjusted_after)

    base = abs(treated_before.mean())
    relative = effect / base if base > 0 else float("inf") if effect else 0.0
    return TreatmentEffect(effect=effect, relative_effect=relative, test=test)
