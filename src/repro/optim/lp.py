"""A small linear-program builder over named variables.

KEA's Optimizer step formulates Eq. 7–10 as an LP; this builder keeps the
formulation readable (variables named after machine groups, constraints named
after what they protect) and solves with either the from-scratch simplex or
scipy (for cross-checking).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.optim.simplex import SimplexResult, simplex_solve
from repro.utils.errors import OptimizationError

__all__ = ["LinearProgram", "LpSolution"]


@dataclass(frozen=True, slots=True)
class LpSolution:
    """Named view of an LP solution."""

    values: dict[str, float]
    objective: float
    status: str
    n_pivots: int

    @property
    def is_optimal(self) -> bool:
        """True when the solver reported optimality."""
        return self.status == "optimal"

    def __getitem__(self, name: str) -> float:
        return self.values[name]


@dataclass
class _Constraint:
    name: str
    coeffs: dict[str, float]
    sense: str  # "<=", ">=", "=="
    rhs: float


class LinearProgram:
    """Build and solve ``maximize c·x`` with named variables and constraints."""

    def __init__(self, name: str = "lp"):
        self.name = name
        self._variables: list[str] = []
        self._objective: dict[str, float] = {}
        self._lower: dict[str, float] = {}
        self._upper: dict[str, float] = {}
        self._constraints: list[_Constraint] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = np.inf,
        objective: float = 0.0,
    ) -> None:
        """Declare a variable with bounds and its objective coefficient."""
        if name in self._lower:
            raise OptimizationError(f"variable {name!r} declared twice")
        if not np.isfinite(lower):
            raise OptimizationError(f"variable {name!r} needs a finite lower bound")
        if upper < lower:
            raise OptimizationError(
                f"variable {name!r} has upper bound {upper} below lower {lower}"
            )
        self._variables.append(name)
        self._lower[name] = float(lower)
        self._upper[name] = float(upper)
        self._objective[name] = float(objective)

    def add_constraint(
        self, name: str, coeffs: dict[str, float], sense: str, rhs: float
    ) -> None:
        """Add ``sum(coeffs[v]·v) <sense> rhs`` with sense in {'<=', '>=', '=='}."""
        if sense not in ("<=", ">=", "=="):
            raise OptimizationError(f"unsupported constraint sense {sense!r}")
        unknown = set(coeffs) - set(self._lower)
        if unknown:
            raise OptimizationError(
                f"constraint {name!r} references undeclared variables: {sorted(unknown)}"
            )
        self._constraints.append(_Constraint(name, dict(coeffs), sense, float(rhs)))

    @property
    def variable_names(self) -> list[str]:
        """Declared variable names, in declaration order."""
        return list(self._variables)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _matrices(self):
        names = self._variables
        index = {name: i for i, name in enumerate(names)}
        n = len(names)
        c = np.array([self._objective[v] for v in names])
        lower = np.array([self._lower[v] for v in names])
        upper = np.array([self._upper[v] for v in names])
        a_ub_rows, b_ub = [], []
        a_eq_rows, b_eq = [], []
        for con in self._constraints:
            row = np.zeros(n)
            for var, coeff in con.coeffs.items():
                row[index[var]] = coeff
            if con.sense == "<=":
                a_ub_rows.append(row)
                b_ub.append(con.rhs)
            elif con.sense == ">=":
                a_ub_rows.append(-row)
                b_ub.append(-con.rhs)
            else:
                a_eq_rows.append(row)
                b_eq.append(con.rhs)
        a_ub = np.array(a_ub_rows) if a_ub_rows else None
        a_eq = np.array(a_eq_rows) if a_eq_rows else None
        return c, a_ub, np.array(b_ub), a_eq, np.array(b_eq), lower, upper

    def solve(self, method: str = "simplex") -> LpSolution:
        """Solve the LP with ``'simplex'`` (from scratch) or ``'scipy'``."""
        if not self._variables:
            raise OptimizationError("the LP has no variables")
        c, a_ub, b_ub, a_eq, b_eq, lower, upper = self._matrices()
        if method == "simplex":
            result = simplex_solve(
                c,
                a_ub=a_ub,
                b_ub=b_ub if a_ub is not None else None,
                a_eq=a_eq,
                b_eq=b_eq if a_eq is not None else None,
                lower=lower,
                upper=upper,
            )
        elif method == "scipy":
            result = self._solve_scipy(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
        else:
            raise OptimizationError(f"unknown LP method {method!r}")
        values = {
            name: float(result.x[i]) if result.is_optimal else float("nan")
            for i, name in enumerate(self._variables)
        }
        return LpSolution(
            values=values,
            objective=result.objective,
            status=result.status,
            n_pivots=result.n_pivots,
        )

    @staticmethod
    def _solve_scipy(c, a_ub, b_ub, a_eq, b_eq, lower, upper) -> SimplexResult:
        from scipy.optimize import linprog

        res = linprog(
            -c,  # scipy minimizes
            A_ub=a_ub,
            b_ub=b_ub if a_ub is not None else None,
            A_eq=a_eq,
            b_eq=b_eq if a_eq is not None else None,
            bounds=list(zip(lower, upper, strict=True)),
            method="highs",
        )
        if res.status == 0:
            return SimplexResult(res.x, float(c @ res.x), "optimal", res.nit)
        status = "infeasible" if res.status == 2 else "unbounded" if res.status == 3 else "error"
        return SimplexResult(np.full(c.size, np.nan), np.nan, status, res.nit)
