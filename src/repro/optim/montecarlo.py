"""Monte-Carlo estimation of expected costs.

The SKU-design application (Section 6.1) has no closed-form objective:
"we use a Monte-Carlo simulation to estimate the objective function, i.e. the
expected total cost of each configuration", repeating the draw-and-evaluate
process 1000 times per candidate configuration.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

__all__ = ["MonteCarloResult", "estimate_expected_value"]


@dataclass(frozen=True, slots=True)
class MonteCarloResult:
    """Sample mean of a simulated quantity with its standard error."""

    mean: float
    std: float
    stderr: float
    n_draws: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI around the mean."""
        return self.mean - z * self.stderr, self.mean + z * self.stderr


def estimate_expected_value(
    draw: Callable[[np.random.Generator], float],
    n_draws: int = 1000,
    rng: np.random.Generator | None = None,
) -> MonteCarloResult:
    """Estimate ``E[draw(rng)]`` by simple Monte Carlo."""
    if n_draws < 2:
        raise ValueError("n_draws must be at least 2")
    if rng is None:
        rng = np.random.default_rng(0)
    samples = np.empty(n_draws)
    for i in range(n_draws):
        samples[i] = draw(rng)
    std = float(samples.std(ddof=1))
    return MonteCarloResult(
        mean=float(samples.mean()),
        std=std,
        stderr=std / math.sqrt(n_draws),
        n_draws=n_draws,
    )
