"""A two-phase primal simplex solver, written from scratch.

The paper solves its container-rebalancing LP with "commercial solvers"
(Section 5.2); our problems are tiny (one variable per machine group, a
handful of constraints), so a dense-tableau simplex is more than enough. The
implementation is deliberately textbook: Bland's rule (no cycling), phase 1
artificial variables, explicit status reporting. Results are cross-checked
against ``scipy.optimize.linprog`` in the test suite.

Problem form solved here (the :mod:`repro.optim.lp` builder produces it)::

    maximize    c · x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                lower <= x <= upper   (finite lower bounds required)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import OptimizationError

__all__ = ["SimplexResult", "simplex_solve"]

_TOL = 1e-9
_MAX_PIVOTS = 10_000


@dataclass(frozen=True, slots=True)
class SimplexResult:
    """Solution of a linear program."""

    x: np.ndarray
    objective: float
    status: str  # "optimal" | "infeasible" | "unbounded"
    n_pivots: int

    @property
    def is_optimal(self) -> bool:
        """True when an optimal solution was found."""
        return self.status == "optimal"


def simplex_solve(
    c: np.ndarray,
    a_ub: np.ndarray | None = None,
    b_ub: np.ndarray | None = None,
    a_eq: np.ndarray | None = None,
    b_eq: np.ndarray | None = None,
    lower: np.ndarray | None = None,
    upper: np.ndarray | None = None,
) -> SimplexResult:
    """Maximize ``c·x`` under linear constraints and box bounds."""
    c = np.asarray(c, dtype=float)
    n = c.size
    lower = np.zeros(n) if lower is None else np.asarray(lower, dtype=float)
    upper = np.full(n, np.inf) if upper is None else np.asarray(upper, dtype=float)
    if lower.size != n or upper.size != n:
        raise OptimizationError("bounds length must match the number of variables")
    if not np.isfinite(lower).all():
        raise OptimizationError("simplex_solve requires finite lower bounds")
    if np.any(upper < lower - _TOL):
        return SimplexResult(np.full(n, np.nan), np.nan, "infeasible", 0)

    # Shift x = lower + z with z >= 0; fold finite upper bounds into A_ub.
    rows_ub: list[np.ndarray] = []
    rhs_ub: list[float] = []
    if a_ub is not None:
        a_ub = np.atleast_2d(np.asarray(a_ub, dtype=float))
        b_ub = np.asarray(b_ub, dtype=float).ravel()
        for i in range(a_ub.shape[0]):
            rows_ub.append(a_ub[i])
            rhs_ub.append(float(b_ub[i] - a_ub[i] @ lower))
    for j in range(n):
        if np.isfinite(upper[j]):
            row = np.zeros(n)
            row[j] = 1.0
            rows_ub.append(row)
            rhs_ub.append(float(upper[j] - lower[j]))

    rows_eq: list[np.ndarray] = []
    rhs_eq: list[float] = []
    if a_eq is not None:
        a_eq = np.atleast_2d(np.asarray(a_eq, dtype=float))
        b_eq = np.asarray(b_eq, dtype=float).ravel()
        for i in range(a_eq.shape[0]):
            rows_eq.append(a_eq[i])
            rhs_eq.append(float(b_eq[i] - a_eq[i] @ lower))

    z, objective_shift, status, pivots = _solve_standard(
        c, rows_ub, rhs_ub, rows_eq, rhs_eq
    )
    if status != "optimal":
        return SimplexResult(np.full(n, np.nan), np.nan, status, pivots)
    x = lower + z
    return SimplexResult(x, float(c @ x), "optimal", pivots)


def _solve_standard(
    c: np.ndarray,
    rows_ub: list[np.ndarray],
    rhs_ub: list[float],
    rows_eq: list[np.ndarray],
    rhs_eq: list[float],
) -> tuple[np.ndarray, float, str, int]:
    """Two-phase simplex on: max c·z, rows_ub·z <= rhs_ub, rows_eq·z = rhs_eq, z >= 0."""
    n = c.size
    m_ub, m_eq = len(rows_ub), len(rhs_eq)
    m = m_ub + m_eq
    if m == 0:
        # Unconstrained except z >= 0: bounded only if c <= 0.
        if np.any(c > _TOL):
            return np.zeros(n), 0.0, "unbounded", 0
        return np.zeros(n), 0.0, "optimal", 0

    # Build equality system [A | slacks | artificials] z_ext = b with b >= 0.
    a = np.zeros((m, n + m_ub))
    b = np.zeros(m)
    needs_artificial: list[int] = []
    for i in range(m_ub):
        a[i, :n] = rows_ub[i]
        a[i, n + i] = 1.0
        b[i] = rhs_ub[i]
        if b[i] < 0:
            a[i] = -a[i]
            b[i] = -b[i]
            needs_artificial.append(i)  # slack now has coefficient -1
    for k in range(m_eq):
        i = m_ub + k
        a[i, :n] = rows_eq[k]
        b[i] = rhs_eq[k]
        if b[i] < 0:
            a[i] = -a[i]
            b[i] = -b[i]
        needs_artificial.append(i)

    n_art = len(needs_artificial)
    total = n + m_ub + n_art
    tableau = np.zeros((m, total))
    tableau[:, : n + m_ub] = a
    basis = np.empty(m, dtype=int)
    art_cols: list[int] = []
    for idx, row in enumerate(needs_artificial):
        col = n + m_ub + idx
        tableau[row, col] = 1.0
        basis[row] = col
        art_cols.append(col)
    for i in range(m):
        if i not in needs_artificial:
            basis[i] = n + i  # the slack of row i

    pivots = 0

    # ---- Phase 1: minimize sum of artificials (maximize the negative). ----
    if n_art:
        phase1_c = np.zeros(total)
        for col in art_cols:
            phase1_c[col] = -1.0
        status, pivots = _optimize(tableau, b, basis, phase1_c, pivots)
        if status == "unbounded":  # pragma: no cover - phase 1 is bounded
            return np.zeros(n), 0.0, "infeasible", pivots
        art_value = sum(b[i] for i in range(m) if basis[i] in art_cols)
        if art_value > 1e-7:
            return np.zeros(n), 0.0, "infeasible", pivots
        # Pivot remaining (degenerate) artificials out of the basis if possible.
        for i in range(m):
            if basis[i] in art_cols:
                pivot_col = next(
                    (
                        j
                        for j in range(n + m_ub)
                        if abs(tableau[i, j]) > _TOL
                    ),
                    None,
                )
                if pivot_col is not None:
                    _pivot(tableau, b, basis, i, pivot_col)
                    pivots += 1

    # ---- Phase 2: original objective over structural + slack columns. ----
    phase2_c = np.zeros(total)
    phase2_c[:n] = c
    for col in art_cols:
        tableau[:, col] = 0.0  # retire artificial columns
    status, pivots = _optimize(tableau, b, basis, phase2_c, pivots)
    if status == "unbounded":
        return np.zeros(n), 0.0, "unbounded", pivots

    z = np.zeros(total)
    for i in range(m):
        z[basis[i]] = b[i]
    return z[:n], float(phase2_c @ z), "optimal", pivots


def _optimize(
    tableau: np.ndarray,
    b: np.ndarray,
    basis: np.ndarray,
    c: np.ndarray,
    pivots: int,
) -> tuple[str, int]:
    """Primal simplex iterations with Bland's rule. Mutates arguments."""
    m, total = tableau.shape
    for _ in range(_MAX_PIVOTS):
        cb = c[basis]
        reduced = c - cb @ tableau
        entering = -1
        for j in range(total):  # Bland: smallest improving index
            if reduced[j] > _TOL:
                entering = j
                break
        if entering < 0:
            return "optimal", pivots
        ratios = np.full(m, np.inf)
        col = tableau[:, entering]
        positive = col > _TOL
        ratios[positive] = b[positive] / col[positive]
        if not positive.any():
            return "unbounded", pivots
        min_ratio = ratios.min()
        candidates = [i for i in range(m) if ratios[i] <= min_ratio + _TOL]
        leaving = min(candidates, key=lambda i: basis[i])  # Bland tie-break
        _pivot(tableau, b, basis, leaving, entering)
        pivots += 1
    raise OptimizationError(
        f"simplex exceeded {_MAX_PIVOTS} pivots; the problem is likely degenerate"
    )


def _pivot(
    tableau: np.ndarray, b: np.ndarray, basis: np.ndarray, row: int, col: int
) -> None:
    """Gaussian pivot on (row, col). Mutates arguments."""
    pivot_value = tableau[row, col]
    tableau[row] /= pivot_value
    b[row] /= pivot_value
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, col]) > 1e-14:
            factor = tableau[i, col]
            tableau[i] -= factor * tableau[row]
            b[i] -= factor * b[row]
    basis[row] = col
