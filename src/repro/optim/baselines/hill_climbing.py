"""Gray-box hill climbing, in the spirit of MRONLINE [36].

MRONLINE tunes map-reduce configurations on-line with a two-step hill
climber (global probing phase, then local search). We implement the local
neighborhood climb with random restarts; every probe counts as an experiment.
"""

from __future__ import annotations

import numpy as np

from repro.optim.baselines.base import Evaluation, Objective, SearchBaseline, SearchResult

__all__ = ["HillClimbing"]


class HillClimbing(SearchBaseline):
    """Steepest-ascent ±step coordinate moves with random restarts."""

    name = "hill_climbing"

    def __init__(self, bounds, integer: bool = True, seed: int = 0, step: float = 1.0,
                 start: np.ndarray | None = None):
        super().__init__(bounds, integer=integer, seed=seed)
        if step <= 0:
            raise ValueError("step must be positive")
        self.step = step
        self.start = None if start is None else self._snap(np.asarray(start, dtype=float))

    def optimize(self, objective: Objective, n_evaluations: int) -> SearchResult:
        if n_evaluations < 1:
            raise ValueError("n_evaluations must be >= 1")
        history: list[Evaluation] = []

        def probe(x: np.ndarray) -> float:
            value = float(objective(x))
            history.append(Evaluation(x=x.copy(), value=value))
            return value

        best_x = self.start if self.start is not None else self._random_point()
        best_value = probe(best_x)
        current_x, current_value = best_x, best_value

        while len(history) < n_evaluations:
            improved = False
            for dim in range(len(self.bounds)):
                for direction in (+1.0, -1.0):
                    if len(history) >= n_evaluations:
                        break
                    candidate = current_x.copy()
                    candidate[dim] += direction * self.step
                    candidate = self._snap(candidate)
                    if np.array_equal(candidate, current_x):
                        continue
                    value = probe(candidate)
                    if value > current_value:
                        current_x, current_value = candidate, value
                        improved = True
            if current_value > best_value:
                best_x, best_value = current_x, current_value
            if not improved and len(history) < n_evaluations:
                # Plateau: random restart.
                current_x = self._random_point()
                current_value = probe(current_x)
                if current_value > best_value:
                    best_x, best_value = current_x, current_value
        return SearchResult(best_x=best_x, best_value=best_value, history=history)
