"""Genetic-algorithm tuner, in the spirit of Gunther [37].

Gunther auto-tunes map-reduce configurations with a genetic algorithm and
reports near-optimal solutions within ~30 trials on small clusters. Standard
machinery: tournament selection, uniform crossover, bounded integer mutation,
elitism.
"""

from __future__ import annotations

import numpy as np

from repro.optim.baselines.base import Evaluation, Objective, SearchBaseline, SearchResult

__all__ = ["GeneticSearch"]


class GeneticSearch(SearchBaseline):
    """A compact integer GA; every fitness call counts as an experiment."""

    name = "genetic"

    def __init__(self, bounds, integer: bool = True, seed: int = 0,
                 population_size: int = 10, mutation_rate: float = 0.2,
                 tournament_size: int = 3, elite: int = 1):
        super().__init__(bounds, integer=integer, seed=seed)
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if not 1 <= tournament_size <= population_size:
            raise ValueError("tournament_size must be in [1, population_size]")
        if not 0 <= elite < population_size:
            raise ValueError("elite must be in [0, population_size)")
        self.population_size = population_size
        self.mutation_rate = mutation_rate
        self.tournament_size = tournament_size
        self.elite = elite

    def optimize(self, objective: Objective, n_evaluations: int) -> SearchResult:
        if n_evaluations < self.population_size:
            raise ValueError("budget must cover at least one full population")
        history: list[Evaluation] = []

        def probe(x: np.ndarray) -> float:
            value = float(objective(x))
            history.append(Evaluation(x=x.copy(), value=value))
            return value

        population = [self._random_point() for _ in range(self.population_size)]
        fitness = [probe(x) for x in population]

        while len(history) < n_evaluations:
            order = np.argsort(fitness)[::-1]
            # Elites carry their known fitness forward — no experiment needed.
            next_population = [population[i].copy() for i in order[: self.elite]]
            next_fitness = [fitness[i] for i in order[: self.elite]]
            while len(next_population) < self.population_size:
                if len(history) >= n_evaluations:
                    break
                parent_a = self._tournament(population, fitness)
                parent_b = self._tournament(population, fitness)
                child = self._mutate(self._crossover(parent_a, parent_b))
                next_population.append(child)
                next_fitness.append(probe(child))
            population = next_population
            fitness = next_fitness

        best = max(history, key=lambda e: e.value)
        return SearchResult(best_x=best.x, best_value=best.value, history=history)

    def _tournament(self, population: list[np.ndarray], fitness: list[float]) -> np.ndarray:
        indices = self.rng.choice(len(population), size=self.tournament_size, replace=False)
        winner = max(indices, key=lambda i: fitness[i])
        return population[winner]

    def _crossover(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        mask = self.rng.random(a.size) < 0.5
        return np.where(mask, a, b)

    def _mutate(self, x: np.ndarray) -> np.ndarray:
        x = x.copy()
        for dim, (lo, hi) in enumerate(self.bounds):
            if self.rng.random() < self.mutation_rate:
                span = max(1.0, 0.1 * (hi - lo))
                x[dim] += self.rng.normal(0.0, span)
        return self._snap(x)
