"""Bayesian optimization with a from-scratch Gaussian process (CherryPick-like).

CherryPick [4] tunes cloud configurations with Bayesian optimization and an
Expected Improvement acquisition. We implement the standard loop — RBF-kernel
GP posterior (Cholesky), EI maximized over a random candidate pool — entirely
on numpy. As with every baseline here, each objective call models one
production experiment.
"""

from __future__ import annotations

import math

import numpy as np

from repro.optim.baselines.base import Evaluation, Objective, SearchBaseline, SearchResult

__all__ = ["GaussianProcess", "BayesianOptimization"]


class GaussianProcess:
    """A minimal RBF-kernel GP regressor with observation noise."""

    def __init__(self, length_scale: float = 1.0, signal_variance: float = 1.0,
                 noise_variance: float = 1e-4):
        if length_scale <= 0 or signal_variance <= 0 or noise_variance < 0:
            raise ValueError("GP hyperparameters must be positive (noise >= 0)")
        self.length_scale = length_scale
        self.signal_variance = signal_variance
        self.noise_variance = noise_variance
        self._x: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._y_mean = 0.0

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq_dists = (
            np.sum(a**2, axis=1)[:, None]
            + np.sum(b**2, axis=1)[None, :]
            - 2.0 * a @ b.T
        )
        return self.signal_variance * np.exp(-0.5 * np.maximum(sq_dists, 0.0)
                                             / self.length_scale**2)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Condition the GP on observations (x: n×d, y: n)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.size:
            raise ValueError("x and y row counts differ")
        self._y_mean = float(y.mean())
        k = self._kernel(x, x) + self.noise_variance * np.eye(x.shape[0])
        self._chol = np.linalg.cholesky(k)
        self._alpha = np.linalg.solve(
            self._chol.T, np.linalg.solve(self._chol, y - self._y_mean)
        )
        self._x = x
        return self

    def predict(self, x_new: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance at ``x_new`` (m×d)."""
        if self._x is None:
            raise RuntimeError("GaussianProcess.predict called before fit")
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        k_star = self._kernel(self._x, x_new)
        mean = self._y_mean + k_star.T @ self._alpha
        v = np.linalg.solve(self._chol, k_star)
        variance = np.maximum(
            self.signal_variance - np.sum(v**2, axis=0), 1e-12
        )
        return mean, variance


def _normal_pdf(z: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * z**2) / math.sqrt(2.0 * math.pi)


def _normal_cdf(z: np.ndarray) -> np.ndarray:
    # erf is available via numpy only through scipy; use the math.erf ufunc-free
    # route with a vectorized wrapper (inputs are small candidate pools).
    return np.array([0.5 * (1.0 + math.erf(v / math.sqrt(2.0))) for v in np.ravel(z)]).reshape(np.shape(z))


class BayesianOptimization(SearchBaseline):
    """GP + Expected Improvement over a random candidate pool."""

    name = "bayesian"

    def __init__(self, bounds, integer: bool = True, seed: int = 0,
                 n_initial: int = 3, candidate_pool: int = 256,
                 length_scale: float | None = None):
        super().__init__(bounds, integer=integer, seed=seed)
        if n_initial < 2:
            raise ValueError("n_initial must be >= 2")
        self.n_initial = n_initial
        self.candidate_pool = candidate_pool
        if length_scale is None:
            spans = [hi - lo for lo, hi in self.bounds]
            length_scale = max(1e-6, 0.2 * float(np.mean(spans)))
        self.length_scale = length_scale

    def optimize(self, objective: Objective, n_evaluations: int) -> SearchResult:
        if n_evaluations < self.n_initial:
            raise ValueError("budget must cover the initial design")
        history: list[Evaluation] = []

        def probe(x: np.ndarray) -> float:
            value = float(objective(x))
            history.append(Evaluation(x=x.copy(), value=value))
            return value

        xs: list[np.ndarray] = []
        ys: list[float] = []
        for _ in range(self.n_initial):
            x = self._random_point()
            xs.append(x)
            ys.append(probe(x))

        while len(history) < n_evaluations:
            y_arr = np.array(ys)
            y_std = float(y_arr.std()) or 1.0
            gp = GaussianProcess(
                length_scale=self.length_scale,
                signal_variance=y_std**2,
                noise_variance=max(1e-8, 1e-4 * y_std**2),
            ).fit(np.array(xs), y_arr)
            candidates = np.array([self._random_point() for _ in range(self.candidate_pool)])
            mean, variance = gp.predict(candidates)
            std = np.sqrt(variance)
            best_y = max(ys)
            z = (mean - best_y) / std
            ei = (mean - best_y) * _normal_cdf(z) + std * _normal_pdf(z)
            x_next = candidates[int(np.argmax(ei))]
            xs.append(x_next)
            ys.append(probe(x_next))

        best = max(history, key=lambda e: e.value)
        return SearchResult(best_x=best.x, best_value=best.value, history=history)
