"""Experiment-based tuning baselines (the approaches Section 8 contrasts).

All baselines share the :class:`~repro.optim.baselines.base.SearchBaseline`
interface and count objective calls — in a production setting every call is a
flighted experiment, which is exactly why the paper prefers observational
tuning.
"""

from repro.optim.baselines.base import Evaluation, SearchBaseline, SearchResult
from repro.optim.baselines.bayesian import BayesianOptimization, GaussianProcess
from repro.optim.baselines.genetic import GeneticSearch
from repro.optim.baselines.hill_climbing import HillClimbing
from repro.optim.baselines.random_search import RandomSearch

__all__ = [
    "Evaluation",
    "SearchBaseline",
    "SearchResult",
    "BayesianOptimization",
    "GaussianProcess",
    "GeneticSearch",
    "HillClimbing",
    "RandomSearch",
]
