"""Random search: the sanity-check baseline every tuner must beat."""

from __future__ import annotations

from repro.optim.baselines.base import Evaluation, Objective, SearchBaseline, SearchResult

__all__ = ["RandomSearch"]


class RandomSearch(SearchBaseline):
    """Uniformly random probes over the box."""

    name = "random"

    def optimize(self, objective: Objective, n_evaluations: int) -> SearchResult:
        if n_evaluations < 1:
            raise ValueError("n_evaluations must be >= 1")
        history: list[Evaluation] = []
        best_x, best_value = None, float("-inf")
        for _ in range(n_evaluations):
            x = self._random_point()
            value = float(objective(x))
            history.append(Evaluation(x=x, value=value))
            if value > best_value:
                best_x, best_value = x, value
        return SearchResult(best_x=best_x, best_value=best_value, history=history)
