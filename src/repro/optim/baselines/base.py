"""Common interface for black-box (experiment-counting) tuning baselines.

The paper's core argument against "experimental tuning" approaches (BO, RL,
hill climbing, genetic search — Sections 1, 5, 8) is not that they cannot
find good configurations, but that **every objective evaluation is a
production experiment** that takes weeks and risks regressions. Each baseline
here therefore reports how many evaluations it consumed; the ablation
benchmark compares that against KEA's observational tuning, which needs zero.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Evaluation", "SearchResult", "SearchBaseline", "clip_to_bounds"]

Objective = Callable[[np.ndarray], float]


@dataclass(frozen=True, slots=True)
class Evaluation:
    """One (configuration, objective) probe — i.e., one would-be experiment."""

    x: np.ndarray
    value: float


@dataclass
class SearchResult:
    """Outcome of a search run."""

    best_x: np.ndarray
    best_value: float
    history: list[Evaluation] = field(default_factory=list)

    @property
    def n_evaluations(self) -> int:
        """Experiments the method consumed (the paper's real cost metric)."""
        return len(self.history)

    def best_after(self, n: int) -> float:
        """Best objective seen within the first ``n`` evaluations."""
        if n < 1 or not self.history:
            raise ValueError("need n >= 1 and a non-empty history")
        return max(e.value for e in self.history[:n])


class SearchBaseline:
    """Base class: maximize ``objective`` over an integer/continuous box."""

    name = "baseline"

    def __init__(self, bounds: Sequence[tuple[float, float]], integer: bool = True,
                 seed: int = 0):
        if not bounds:
            raise ValueError("bounds must be non-empty")
        for low, high in bounds:
            if high < low:
                raise ValueError(f"invalid bound ({low}, {high})")
        self.bounds = [(float(lo), float(hi)) for lo, hi in bounds]
        self.integer = integer
        self.rng = np.random.default_rng(seed)

    # -- helpers --------------------------------------------------------
    def _random_point(self) -> np.ndarray:
        point = np.array(
            [self.rng.uniform(lo, hi) for lo, hi in self.bounds], dtype=float
        )
        return self._snap(point)

    def _snap(self, x: np.ndarray) -> np.ndarray:
        x = clip_to_bounds(x, self.bounds)
        if self.integer:
            x = np.round(x)
        return x

    def optimize(self, objective: Objective, n_evaluations: int) -> SearchResult:
        """Run the search with a budget of ``n_evaluations`` probes."""
        raise NotImplementedError


def clip_to_bounds(x: np.ndarray, bounds: Sequence[tuple[float, float]]) -> np.ndarray:
    """Clip each coordinate of ``x`` into its box bound."""
    lows = np.array([lo for lo, _ in bounds])
    highs = np.array([hi for _, hi in bounds])
    return np.minimum(np.maximum(np.asarray(x, dtype=float), lows), highs)
