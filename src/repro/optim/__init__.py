"""Optimization substrate: LP (from-scratch simplex), grids, Monte Carlo,
and experiment-based search baselines."""

from repro.optim.grid import GridPoint, GridSearchResult, grid_search
from repro.optim.lp import LinearProgram, LpSolution
from repro.optim.montecarlo import MonteCarloResult, estimate_expected_value
from repro.optim.simplex import SimplexResult, simplex_solve

__all__ = [
    "GridPoint",
    "GridSearchResult",
    "grid_search",
    "LinearProgram",
    "LpSolution",
    "MonteCarloResult",
    "estimate_expected_value",
    "SimplexResult",
    "simplex_solve",
]
