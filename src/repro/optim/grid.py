"""Exhaustive grid search.

Used two ways: to sweep configuration surfaces (the RAM × SSD cost surface of
Figure 14) and as an exact cross-check for the LP (the paper's constraint is
linearized; grid search over the small integer space verifies the
linearization did not move the optimum).
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence
from dataclasses import dataclass

__all__ = ["GridPoint", "GridSearchResult", "grid_search"]


@dataclass(frozen=True, slots=True)
class GridPoint:
    """One evaluated grid cell."""

    point: dict[str, float]
    value: float


@dataclass(frozen=True, slots=True)
class GridSearchResult:
    """Best cell plus the full evaluated surface."""

    best: GridPoint
    evaluations: list[GridPoint]

    def surface(self) -> list[GridPoint]:
        """All evaluations (alias emphasizing the Figure 14 use case)."""
        return self.evaluations


def grid_search(
    objective: Callable[[dict[str, float]], float],
    axes: dict[str, Sequence[float]],
    minimize: bool = True,
) -> GridSearchResult:
    """Evaluate ``objective`` on the cartesian product of ``axes``.

    ``axes`` maps dimension name → candidate values. Returns the best cell
    (min or max) and every evaluation, in axis-product order.
    """
    if not axes:
        raise ValueError("grid_search needs at least one axis")
    for name, values in axes.items():
        if len(values) == 0:
            raise ValueError(f"axis {name!r} has no candidate values")
    names = list(axes)
    evaluations: list[GridPoint] = []
    best: GridPoint | None = None
    for combo in itertools.product(*(axes[name] for name in names)):
        point = dict(zip(names, combo, strict=True))
        value = float(objective(point))
        cell = GridPoint(point=point, value=value)
        evaluations.append(cell)
        if best is None or (value < best.value if minimize else value > best.value):
            best = cell
    assert best is not None  # axes validated non-empty above
    return GridSearchResult(best=best, evaluations=evaluations)
