"""Unit constants and conversions.

All internal accounting uses **bytes** for data volume and **seconds** for
time. These helpers exist so call sites read naturally (``64 * GB``) and so
benchmarks can print paper-style units (PB per day, hours, ...).
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "PB",
    "bytes_to_gb",
    "bytes_to_tb",
    "bytes_to_pb",
    "seconds",
    "minutes",
    "hours",
    "days",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB
PB = 1024 * TB

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR


def bytes_to_gb(n_bytes: float) -> float:
    """Convert bytes to gibibytes."""
    return n_bytes / GB


def bytes_to_tb(n_bytes: float) -> float:
    """Convert bytes to tebibytes."""
    return n_bytes / TB


def bytes_to_pb(n_bytes: float) -> float:
    """Convert bytes to pebibytes."""
    return n_bytes / PB


def seconds(n: float) -> float:
    """Identity helper; exists for symmetry with :func:`minutes`/:func:`hours`."""
    return float(n)


def minutes(n: float) -> float:
    """Convert minutes to seconds."""
    return float(n) * 60.0


def hours(n: float) -> float:
    """Convert hours to seconds."""
    return float(n) * SECONDS_PER_HOUR


def days(n: float) -> float:
    """Convert days to seconds."""
    return float(n) * SECONDS_PER_DAY
