"""Shared utilities: errors, deterministic RNG streams, units, text tables.

These helpers are intentionally dependency-light; every other subpackage of
:mod:`repro` builds on them.
"""

from repro.utils.errors import (
    ConfigurationError,
    ExperimentError,
    ModelNotCalibratedError,
    OptimizationError,
    ReproError,
    SchedulingError,
    TelemetryError,
)
from repro.utils.rng import RngStreams, derive_seed
from repro.utils.tables import TextTable, format_float, format_pct
from repro.utils.units import (
    GB,
    KB,
    MB,
    PB,
    TB,
    bytes_to_gb,
    bytes_to_pb,
    bytes_to_tb,
    hours,
    minutes,
    seconds,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SchedulingError",
    "TelemetryError",
    "ModelNotCalibratedError",
    "OptimizationError",
    "ExperimentError",
    "RngStreams",
    "derive_seed",
    "TextTable",
    "format_float",
    "format_pct",
    "KB",
    "MB",
    "GB",
    "TB",
    "PB",
    "bytes_to_gb",
    "bytes_to_tb",
    "bytes_to_pb",
    "seconds",
    "minutes",
    "hours",
]
