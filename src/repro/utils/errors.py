"""Exception hierarchy for the KEA reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so callers
can catch library failures without masking genuine programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid cluster, YARN, or application configuration was supplied."""


class SchedulingError(ReproError):
    """The scheduler was asked to do something impossible.

    Examples: placing a task on a machine that does not exist, or submitting
    a job whose DAG contains a cycle.
    """


class TelemetryError(ReproError):
    """Telemetry records were missing, malformed, or inconsistent."""


class ModelNotCalibratedError(ReproError):
    """A predictive model was used before :meth:`fit` was called."""


class OptimizationError(ReproError):
    """The optimizer could not produce a solution.

    Raised for infeasible or unbounded linear programs and for search
    baselines that exhaust their budget without a feasible candidate.
    """


class ExperimentError(ReproError):
    """An experiment design could not be realized on the given cluster."""


class ApplicationError(ReproError):
    """A tuning application was misused or could not run its lifecycle.

    Examples: looking up an unregistered application name, calling
    ``propose`` without the What-if Engine the application requires, or
    running an experimental application without a bound host environment.
    """


class ServiceError(ReproError):
    """The continuous tuning service was driven through an invalid transition.

    Examples: advancing a campaign with an outcome of the wrong kind, or
    launching a campaign against an unknown tenant or scenario.
    """
