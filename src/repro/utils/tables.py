"""Plain-text table rendering for benchmark and example output.

The paper reports results as tables and figures; our benchmarks print the
same rows/series as aligned text. This module is deliberately simple — no
external dependencies, no colour, stable column widths — so benchmark output
diffs cleanly between runs.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["TextTable", "format_float", "format_pct"]


def format_float(value: float, digits: int = 2) -> str:
    """Format a float with ``digits`` decimals, handling None gracefully."""
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def format_pct(value: float, digits: int = 1, signed: bool = True) -> str:
    """Format a fraction as a percentage string (``0.109`` → ``'+10.9%'``)."""
    if value is None:
        return "-"
    sign = "+" if signed and value > 0 else ""
    return f"{sign}{value * 100:.{digits}f}%"


class TextTable:
    """An aligned, pipe-delimited text table.

    >>> t = TextTable(["SKU", "count"])
    >>> t.add_row(["Gen 1.1", 120])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    SKU     | count
    --------+------
    Gen 1.1 | 120
    """

    def __init__(self, columns: Sequence[str], title: str | None = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        """Append a row; values are stringified with ``str()``."""
        row = [str(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table to an aligned multi-line string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths, strict=True))
        rule = "-+-".join("-" * w for w in widths)
        lines.append(header)
        lines.append(rule)
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths, strict=True)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.render()
