"""Deterministic, named random-number streams.

Simulations in this library must be reproducible: the same seed must produce
the same telemetry, the same calibrated models, and the same optimizer output.
A single shared ``numpy`` generator makes that fragile, because adding one
extra draw anywhere reorders every subsequent draw. Instead each subsystem
asks :class:`RngStreams` for its own *named* stream; streams are derived from
the root seed and the name, so they are stable under unrelated code changes.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "RngStreams"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    The derivation hashes both inputs, so distinct names yield statistically
    independent seeds and the mapping is stable across processes and runs
    (unlike ``hash()``, which is salted per interpreter).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """A factory of independent, named ``numpy`` random generators.

    >>> streams = RngStreams(seed=7)
    >>> a = streams.get("arrivals")
    >>> b = streams.get("placement")
    >>> a is streams.get("arrivals")   # memoized per name
    True
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            child_seed = derive_seed(self._seed, name)
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Return a new :class:`RngStreams` rooted under ``name``.

        Useful when a subsystem itself needs several named streams.
        """
        return RngStreams(derive_seed(self._seed, name))

    def reset(self) -> None:
        """Drop all memoized streams so the next draws restart each sequence."""
        self._streams.clear()
