"""REP001 — ambient nondeterminism inside the deterministic core.

The KEA reproduction's load-bearing guarantee is that a simulation is a
pure function of its seeds and declarative inputs: serial == pooled ==
queue bit-identity, cache-key replay, and resumable rollouts all rest on
it. Wall clocks, OS entropy, and process-global RNG state are the ways
that guarantee silently dies, so inside the core packages
(``cluster``, ``workload``, ``faults``, ``service``, ``core``) this rule
bans them at lint time:

* wall/CPU clocks: ``time.time``/``monotonic``/``perf_counter``/
  ``process_time`` (+ ``_ns`` variants), ``datetime.now``/``utcnow``/
  ``today``;
* OS entropy: ``os.urandom``, ``uuid.uuid1``/``uuid4``, anything from
  ``secrets``;
* process-global RNG: every ``random.*`` module-level function (seeded
  ``random.Random(seed)`` instances are the sanctioned spelling) and
  numpy's legacy global namespace (``np.random.rand`` etc.);
* unseeded constructions: ``np.random.default_rng()`` /
  ``RandomState()`` with no seed argument.

Out-of-band measurement (profiling gated on an active tracer, worker
wall-clock that never enters a cache key) is legitimate — those sites
carry ``# repro: allow[REP001] <why it cannot leak into results>``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.core import Finding, ModuleContext
from repro.analysis.registry import Rule, register

__all__ = ["AmbientNondeterminismRule", "CORE_PACKAGES"]

#: Layers whose behavior must be a pure function of seeds and inputs.
CORE_PACKAGES = frozenset({"cluster", "workload", "faults", "service", "core"})

_CLOCKS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_ENTROPY = {
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: Module prefixes where *every* call is process-global or OS-entropy
#: nondeterminism unless explicitly sanctioned below.
_BANNED_PREFIXES = ("random.", "numpy.random.", "secrets.")

#: Explicit, seedable constructions that are fine to call anywhere.
_SANCTIONED = {
    "random.Random",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.MT19937",
    "numpy.random.BitGenerator",
}

#: Constructors that are deterministic *only* when given a seed argument.
_NEEDS_SEED = {"numpy.random.default_rng", "numpy.random.RandomState"}


@register
class AmbientNondeterminismRule(Rule):
    code = "REP001"
    name = "ambient-nondeterminism"
    summary = (
        "no wall clocks, OS entropy, global RNG state, or unseeded "
        "generators inside the deterministic core"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.package not in CORE_PACKAGES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.resolve_call_origin(node.func, node)
            if origin is None:
                continue
            message = self._diagnose(origin, node)
            if message is not None:
                yield self.finding(ctx, node, message)

    def _diagnose(self, origin: str, call: ast.Call) -> str | None:
        if origin in _SANCTIONED:
            return None
        if origin in _NEEDS_SEED:
            if call.args or call.keywords:
                return None
            return (
                f"unseeded {origin}() in the deterministic core: every "
                "generator must be constructed from an explicit seed so "
                "replays are bit-identical"
            )
        if origin in _CLOCKS:
            return (
                f"{origin}() in the deterministic core: wall/CPU clocks "
                "must not influence simulation state — derive timing from "
                "simulated hours, or keep the measurement out-of-band "
                "under a justified pragma"
            )
        if origin in _ENTROPY:
            return (
                f"{origin}() in the deterministic core: OS entropy breaks "
                "seed-determinism — draw from a seeded RNG stream instead"
            )
        for prefix in _BANNED_PREFIXES:
            if origin.startswith(prefix):
                return (
                    f"{origin}() uses process-global or OS-entropy "
                    "randomness: the deterministic core must draw from "
                    "seeded, explicitly-passed generators "
                    "(random.Random(seed) / np.random.default_rng(seed))"
                )
        return None
