"""The reprolint checkers. Importing this package registers every rule."""

from repro.analysis.rules import (  # noqa: F401  (import-for-registration)
    cache_keys,
    determinism,
    idkeys,
    layering,
    pickle_safety,
)

__all__ = ["cache_keys", "determinism", "idkeys", "layering", "pickle_safety"]
