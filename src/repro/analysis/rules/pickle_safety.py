"""REP003 — pickle-hostile state on pool/spool-crossing dataclasses.

Requests, scenarios, fault plans, and config builds cross process
boundaries (``SimulationPool`` workers) and the file spool
(``LocalQueueBackend``), so every one of them must pickle cleanly. The
constructs that break that do so only at runtime — and only on the first
parallel or durable run, long after the field was added. This rule flags
them at lint time, on any *boundary class* (the known crossing types and
every subclass of ``ConfigBuild`` — subclassing one is what puts a type
on the wire):

* a ``lambda`` as a field default (``f: Callable = lambda: ...`` or
  ``field(default=lambda ...)``) — lambdas never pickle; module-level
  functions do (``field(default_factory=...)`` stays legal: the factory
  itself is not instance state);
* assigning a lambda, an open file handle, or a ``threading`` /
  ``multiprocessing`` / ``socket`` primitive to ``self`` (including via
  ``object.__setattr__`` on frozen dataclasses);
* defining a class inside a method — instances of a local class cannot
  be pickled (pickle resolves classes by qualified module path).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.core import Finding, ModuleContext
from repro.analysis.registry import Rule, register

__all__ = ["PickleSafetyRule", "BOUNDARY_CLASS_NAMES", "BOUNDARY_BASE_NAMES"]

#: Types that ride the pool / spool by name. Extending the execution plane
#: with a new crossing type means adding it here (the cache-key rule keys
#: off methods instead, so it self-extends).
BOUNDARY_CLASS_NAMES = frozenset(
    {
        "SimulationRequest",
        "SimulationOutcome",
        "OutcomeTiming",
        "Scenario",
        "TenantSpec",
        "FaultPlan",
        "OutageSpec",
        "StragglerSpec",
        "MachineSelector",
        "ObservationSpec",
        "RolloutPlan",
        "RolloutWave",
        "RolloutCheckpoint",
        "PlannedFlight",
        "FlightPlan",
    }
)

#: Subclassing one of these puts the subclass on the wire.
BOUNDARY_BASE_NAMES = frozenset({"ConfigBuild"} | BOUNDARY_CLASS_NAMES)

_UNPICKLABLE_ORIGINS = ("threading.", "multiprocessing.", "_thread.", "socket.")


def _base_names(node: ast.ClassDef) -> set[str]:
    names = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def is_boundary_class(node: ast.ClassDef) -> bool:
    return node.name in BOUNDARY_CLASS_NAMES or bool(
        _base_names(node) & BOUNDARY_BASE_NAMES
    )


@register
class PickleSafetyRule(Rule):
    code = "REP003"
    name = "pickle-safety"
    summary = (
        "pool/spool-crossing dataclasses must not carry lambdas, local "
        "classes, open handles, or threading primitives"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and is_boundary_class(node):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: ModuleContext, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                yield from self._check_field_default(ctx, cls, stmt.value)
            elif isinstance(stmt, ast.Assign):
                yield from self._check_field_default(ctx, cls, stmt.value)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_method(ctx, cls, stmt)

    def _check_field_default(
        self, ctx: ModuleContext, cls: ast.ClassDef, value: ast.expr
    ) -> Iterable[Finding]:
        if isinstance(value, ast.Lambda):
            yield self.finding(
                ctx,
                value,
                f"{cls.name} is a pickle-boundary class, but this field "
                "defaults to a lambda — lambdas never pickle; use a "
                "module-level function",
            )
            return
        if isinstance(value, ast.Call):
            origin = ctx.resolve_call_origin(value.func, value)
            if origin in ("field", "dataclasses.field"):
                for kw in value.keywords:
                    if kw.arg == "default" and isinstance(kw.value, ast.Lambda):
                        yield self.finding(
                            ctx,
                            kw.value,
                            f"{cls.name} is a pickle-boundary class, but "
                            "field(default=<lambda>) stores a lambda on "
                            "every instance — use a module-level function",
                        )
                    elif kw.arg in ("default", "default_factory"):
                        inner = kw.value
                        if isinstance(inner, ast.Call) or isinstance(
                            inner, ast.Name
                        ):
                            yield from self._check_value(
                                ctx, cls, inner, "field default"
                            )
            else:
                yield from self._check_value(ctx, cls, value, "field default")

    def _check_method(
        self, ctx: ModuleContext, cls: ast.ClassDef, method: ast.AST
    ) -> Iterable[Finding]:
        for node in ast.walk(method):
            if isinstance(node, ast.ClassDef):
                yield self.finding(
                    ctx,
                    node,
                    f"class {node.name!r} is defined inside a method of "
                    f"pickle-boundary class {cls.name}: instances of a "
                    "local class cannot pickle (pickle resolves classes "
                    "by module path) — hoist it to module level",
                )
            elif isinstance(node, ast.Assign):
                if any(self._targets_self(t) for t in node.targets):
                    yield from self._check_value(
                        ctx, cls, node.value, "attribute assigned to self"
                    )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if self._targets_self(node.target):
                    yield from self._check_value(
                        ctx, cls, node.value, "attribute assigned to self"
                    )
            elif isinstance(node, ast.Call):
                # object.__setattr__(self, "x", <value>) — the frozen-
                # dataclass spelling of self.x = <value>.
                origin = ctx.resolve_call_origin(node.func, node)
                if (
                    origin == "object.__setattr__"
                    and len(node.args) == 3
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id == "self"
                ):
                    yield from self._check_value(
                        ctx, cls, node.args[2], "attribute assigned to self"
                    )

    @staticmethod
    def _targets_self(target: ast.expr) -> bool:
        return (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        )

    def _check_value(
        self, ctx: ModuleContext, cls: ast.ClassDef, value: ast.expr, where: str
    ) -> Iterable[Finding]:
        if isinstance(value, ast.Lambda):
            yield self.finding(
                ctx,
                value,
                f"{cls.name} is a pickle-boundary class, but a lambda is "
                f"stored as {where} — lambdas never pickle; use a "
                "module-level function",
            )
            return
        if not isinstance(value, ast.Call):
            return
        origin = ctx.resolve_call_origin(value.func, value)
        if origin is None:
            return
        if origin == "open":
            yield self.finding(
                ctx,
                value,
                f"open(...) stored as {where} on pickle-boundary class "
                f"{cls.name}: file handles cannot cross the pool/spool — "
                "store the path and open lazily",
            )
        elif origin.startswith(_UNPICKLABLE_ORIGINS):
            yield self.finding(
                ctx,
                value,
                f"{origin}(...) stored as {where} on pickle-boundary "
                f"class {cls.name}: thread/process/socket primitives "
                "cannot pickle — keep them off the wire-crossing types",
            )
