"""REP005 — the package dependency DAG, enforced at import sites.

The observability contract ("``obs`` is out-of-band: imported by anyone,
imports no simulation layer") and the service boundary ("``telemetry`` /
``cluster`` / ``workload`` never import ``service``") hold today only by
convention — one convenience import inverts them silently, and the
inversion is invisible until a pickle cycle or a cache-key dependency
appears in production. This rule pins the whole DAG: every ``repro``
sub-package declares the sub-packages it may import, and any other
``repro.*`` import is an error. A brand-new package is also an error
until it is placed in the DAG — adding a layer is an architectural act,
not a side effect.

Importing the top-level ``repro`` facade from inside a layer is banned
outright: the facade re-exports everything, so a facade import is a
cycle in disguise.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.core import Finding, ModuleContext
from repro.analysis.registry import Rule, register

__all__ = ["ImportLayeringRule", "LAYER_DAG"]

_EVERYTHING = frozenset(
    {
        "utils",
        "stats",
        "obs",
        "telemetry",
        "ml",
        "optim",
        "workload",
        "cluster",
        "faults",
        "cost",
        "flighting",
        "experiment",
        "core",
    }
)

#: package -> the sub-packages it may import. ``obs`` (out-of-band
#: observability) and ``utils`` are leaves importable from anywhere;
#: ``service`` sits on top and is importable by nobody; ``analysis``
#: (this linter) is fully self-contained in both directions.
LAYER_DAG: dict[str, frozenset[str]] = {
    "utils": frozenset(),
    "stats": frozenset({"utils"}),
    "obs": frozenset({"utils"}),
    "telemetry": frozenset({"utils", "stats", "obs"}),
    "ml": frozenset({"utils", "stats"}),
    "optim": frozenset({"utils", "stats", "ml"}),
    "workload": frozenset({"utils", "stats", "telemetry", "obs"}),
    "cluster": frozenset(
        {"utils", "stats", "telemetry", "workload", "obs"}
    ),
    "faults": frozenset({"utils", "cluster", "workload", "obs"}),
    "cost": frozenset({"utils", "cluster", "telemetry", "obs"}),
    "flighting": frozenset(
        {"utils", "stats", "telemetry", "cluster", "workload", "obs"}
    ),
    "experiment": frozenset(
        {
            "utils",
            "stats",
            "telemetry",
            "cluster",
            "workload",
            "flighting",
            "ml",
            "optim",
            "obs",
        }
    ),
    "core": frozenset(
        {
            "utils",
            "stats",
            "telemetry",
            "cluster",
            "workload",
            "flighting",
            "experiment",
            "ml",
            "optim",
            "obs",
            "faults",
            "cost",
        }
    ),
    "service": _EVERYTHING,
    "analysis": frozenset(),
}


@register
class ImportLayeringRule(Rule):
    code = "REP005"
    name = "import-layering"
    summary = (
        "repro sub-packages may import only the layers below them in the "
        "declared dependency DAG"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        package = ctx.package
        if package is None:
            return  # the top-level facade, or a non-repro module
        allowed = LAYER_DAG.get(package)
        if allowed is None:
            yield self.finding(
                ctx,
                ctx.tree,
                f"package {package!r} is not in the layering DAG — place "
                "it in repro.analysis.rules.layering.LAYER_DAG before "
                "adding modules to it (adding a layer is an "
                "architectural decision)",
            )
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield from self._check_target(
                        ctx, node, alias.name, package, allowed
                    )
            elif isinstance(node, ast.ImportFrom) and not node.level:
                yield from self._check_target(
                    ctx, node, node.module or "", package, allowed
                )

    def _check_target(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        target: str,
        package: str,
        allowed: frozenset[str],
    ) -> Iterable[Finding]:
        parts = target.split(".")
        if parts[0] != "repro":
            return
        if len(parts) == 1:
            yield self.finding(
                ctx,
                node,
                f"{package!r} imports the top-level repro facade, which "
                "re-exports every layer — import the needed layer module "
                "directly",
            )
            return
        imported = parts[1]
        if imported == package:
            return
        if imported not in allowed:
            relation = (
                "above it in the dependency DAG"
                if imported in LAYER_DAG
                else "not in the layering DAG"
            )
            yield self.finding(
                ctx,
                node,
                f"layering violation: {package!r} imports "
                f"repro.{imported}, which is {relation} "
                f"({package!r} may import: "
                f"{', '.join(sorted(allowed)) or 'nothing'})",
            )
