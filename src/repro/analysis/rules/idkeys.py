"""REP002 — ``id()`` used as an identity key.

CPython reuses object ids the moment an object is collected, so keying a
dict, populating a set, or comparing with ``id(x)`` is only correct while
every keyed object is provably kept alive — an invariant refactors break
without a test noticing (the simulator documented exactly this hazard and
PR 5 replaced its ``id(task)`` keys with run-scoped TaskIds). This rule
flags ``id(...)`` the moment its value flows somewhere key-like:

* a subscript key (``d[id(x)]``), a dict-literal or dict-comprehension
  key, a set literal/comprehension element;
* an argument to a key-like method: ``add``, ``get``, ``setdefault``,
  ``discard``, ``remove``, ``pop``, ``index``, ``count``,
  ``__contains__``;
* any comparison, including ``in`` / ``not in`` membership tests.

Printing or logging ``id(x)`` for diagnostics is fine and is not flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.core import Finding, ModuleContext
from repro.analysis.registry import Rule, register

__all__ = ["IdAsKeyRule"]

_KEYLIKE_METHODS = frozenset(
    {
        "add",
        "get",
        "setdefault",
        "discard",
        "remove",
        "pop",
        "index",
        "count",
        "__contains__",
    }
)


def _is_id_call(ctx: ModuleContext, node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
        and not ctx.is_shadowed("id", node)
        and "id" not in ctx.imports
        and len(node.args) == 1
    )


@register
class IdAsKeyRule(Rule):
    code = "REP002"
    name = "id-as-key"
    summary = (
        "id(x) must not flow into dict keys, set members, or comparisons "
        "— CPython reuses ids after collection"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not _is_id_call(ctx, node):
                continue
            sink = self._keylike_sink(ctx, node)
            if sink is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"id(...) flows into {sink}: object ids are reused "
                    "after collection, so this aliases once the referent "
                    "dies — key by a run-scoped id or by value instead",
                )

    def _keylike_sink(self, ctx: ModuleContext, node: ast.Call) -> str | None:
        parent = ctx.parent(node)
        if isinstance(parent, ast.Subscript) and parent.slice is node:
            return "a subscript key"
        if isinstance(parent, ast.Compare):
            return "a comparison"
        if isinstance(parent, ast.Set):
            return "a set literal"
        if isinstance(parent, ast.Dict) and node in parent.keys:
            return "a dict-literal key"
        if isinstance(parent, ast.DictComp) and parent.key is node:
            return "a dict-comprehension key"
        if isinstance(parent, ast.SetComp) and parent.elt is node:
            return "a set-comprehension element"
        if (
            isinstance(parent, ast.Call)
            and node in parent.args
            and isinstance(parent.func, ast.Attribute)
            and parent.func.attr in _KEYLIKE_METHODS
        ):
            return f"a .{parent.func.attr}(...) call"
        if isinstance(parent, ast.Tuple):
            # A tuple built around id(x) that is itself a key/member —
            # e.g. d[(id(a), id(b))] or s.add((kind, id(x))).
            grand = ctx.parent(parent)
            if isinstance(grand, ast.Subscript) and grand.slice is parent:
                return "a subscript key (via a tuple)"
            if isinstance(grand, ast.Set):
                return "a set literal (via a tuple)"
            if (
                isinstance(grand, ast.Call)
                and parent in grand.args
                and isinstance(grand.func, ast.Attribute)
                and grand.func.attr in _KEYLIKE_METHODS
            ):
                return f"a .{grand.func.attr}(...) call (via a tuple)"
        return None
