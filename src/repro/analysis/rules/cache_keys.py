"""REP004 — cache keys must cover every behavior-affecting field.

``SimulationRequest.cache_key()`` is the service's memoization contract:
two requests with equal keys are replayed from cache without simulating.
Add a dataclass field that changes behavior but forget to fold it into
the key and the cache silently serves wrong results — the bug class PRs
3, 4, and 9 each had to extend the key by hand to avoid. This rule makes
the omission a lint error:

* For every dataclass that defines a key method (``cache_key`` or
  ``fingerprint``), each declared field must be *reachable* from that
  method — read as ``self.<field>`` in the method itself or in any
  same-class method/property it (transitively) calls. Passing the whole
  instance (``repr(self)``, ``asdict(self)``, f-strings over ``self``)
  covers everything, since the dataclass repr includes every field.
* Classes whose *repr* is the key material (``Scenario`` and the fault
  types folded in via ``repr(self.scenario)``) must keep that repr
  complete: ``field(repr=False)`` and hand-written ``__repr__`` are
  flagged, because either silently drops fields from every cache key
  built on the repr.

Intentionally key-exempt fields (derived caches, display-only labels)
take a field-level ``# repro: allow[REP004] <why it cannot change
behavior>``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.core import Finding, ModuleContext
from repro.analysis.registry import Rule, register

__all__ = ["CacheKeyCompletenessRule", "KEY_METHODS", "REPR_KEYED_CLASSES"]

#: Methods whose return value is cache-key material.
KEY_METHODS = ("cache_key", "fingerprint")

#: Dataclasses whose ``repr`` feeds a cache key elsewhere (the request
#: folds ``repr(self.scenario)`` / ``repr(self.spec)`` into its digest,
#: and the scenario's repr transitively embeds its fault plan's).
REPR_KEYED_CLASSES = frozenset(
    {
        "Scenario",
        "TenantSpec",
        "FaultPlan",
        "OutageSpec",
        "StragglerSpec",
        "MachineSelector",
        "SeasonalityProfile",
        "SpikeProfile",
    }
)

#: Whole-instance sinks: passing ``self`` to one of these covers every
#: field at once (dataclass repr/astuple/asdict include all fields).
_WHOLE_INSTANCE_CALLS = frozenset(
    {"repr", "str", "format", "vars", "hash", "asdict", "astuple",
     "dataclasses.asdict", "dataclasses.astuple"}
)


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (
            target.attr
            if isinstance(target, ast.Attribute)
            else getattr(target, "id", None)
        )
        if name == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> list[tuple[str, ast.AnnAssign]]:
    fields = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append((stmt.target.id, stmt))
    return fields


class _SelfUseCollector(ast.NodeVisitor):
    """Attribute reads and whole-instance uses of ``self`` in one method."""

    def __init__(self) -> None:
        self.attribute_reads: set[str] = set()
        self.whole_instance = False

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            # Do not descend: the base `self` Name here is an attribute
            # access, not a whole-instance use.
            self.attribute_reads.add(node.attr)
            return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        # A bare `self` that is not the base of an attribute access —
        # repr(self), f"{self}", asdict(self) — exposes every field.
        if node.id == "self":
            self.whole_instance = True


@register
class CacheKeyCompletenessRule(Rule):
    code = "REP004"
    name = "cache-key-completeness"
    summary = (
        "every dataclass field must be reachable from the class's "
        "cache_key()/fingerprint(), and repr-keyed classes must keep "
        "their repr complete"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _is_dataclass(node):
                yield from self._check_key_methods(ctx, node)
                if node.name in REPR_KEYED_CLASSES:
                    yield from self._check_repr_keyed(ctx, node)

    # ------------------------------------------------------------------
    # key-method completeness

    def _check_key_methods(
        self, ctx: ModuleContext, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        key_methods = [name for name in KEY_METHODS if name in methods]
        if not key_methods:
            return
        fields = _dataclass_fields(cls)
        if not fields:
            return

        # Transitive closure over same-class helpers: reading self.helper
        # (a property) or calling self.helper() pulls that method's own
        # reads into the reachable set.
        reachable_reads: set[str] = set()
        whole_instance = False
        visited: set[str] = set()
        frontier = list(key_methods)
        while frontier:
            name = frontier.pop()
            if name in visited:
                continue
            visited.add(name)
            method = methods.get(name)
            if method is None:
                continue
            collector = _SelfUseCollector()
            for stmt in method.body:
                collector.visit(stmt)
            whole_instance = whole_instance or collector.whole_instance
            for attr in collector.attribute_reads:
                if attr in methods:
                    frontier.append(attr)
                else:
                    reachable_reads.add(attr)
        if whole_instance:
            return

        key_label = " / ".join(f"{name}()" for name in key_methods)
        for field_name, stmt in fields:
            if field_name in reachable_reads:
                continue
            yield self.finding(
                ctx,
                stmt,
                f"field {field_name!r} of {cls.name} is not folded into "
                f"{key_label}: two instances differing only in "
                f"{field_name!r} would produce equal keys and alias in "
                "the cache — fold it in, or pragma it with a reason it "
                "cannot affect behavior",
            )

    # ------------------------------------------------------------------
    # repr-keyed classes

    def _check_repr_keyed(
        self, ctx: ModuleContext, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name == "__repr__":
                    yield self.finding(
                        ctx,
                        stmt,
                        f"{cls.name}'s repr is cache-key material, but it "
                        "defines a hand-written __repr__ — a custom repr "
                        "can silently drop fields from every key built on "
                        "it; rely on the dataclass-generated repr",
                    )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.value, ast.Call
            ):
                origin = ctx.resolve_call_origin(stmt.value.func, stmt.value)
                if origin not in ("field", "dataclasses.field"):
                    continue
                for kw in stmt.value.keywords:
                    if (
                        kw.arg == "repr"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is False
                    ):
                        yield self.finding(
                            ctx,
                            kw,
                            f"field(repr=False) on {cls.name}: this "
                            "class's repr is cache-key material, so "
                            "hiding a field from it drops the field from "
                            "every cache key — keep it in the repr",
                        )
