"""``python -m repro.analysis [paths] --format text|json|github``.

Exit status: 0 when every checked file is clean, 1 when any finding
survives suppression (including stale/malformed pragmas), 2 on usage
errors (argparse's convention).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.registry import all_rules
from repro.analysis.reporting import FORMATS, render
from repro.analysis.runner import lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: statically enforce the repository's determinism, "
            "pickle-safety, cache-key, and layering contracts"
        ),
        epilog="rules: "
        + "; ".join(f"{rule.code} {rule.name}" for rule in all_rules()),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["."],
        help="files or directories to lint (default: current directory)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        return 0
    findings, checked = lint_paths(args.paths)
    output = render(findings, args.format, checked)
    if output:
        print(output)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
