"""Shared analysis substrate: findings, parent links, imports, scopes.

Every reprolint rule works off a :class:`ModuleContext` — one parsed file
plus the indexes the checkers need and ``ast`` does not provide:

* **parent links** (``ctx.parent(node)``), so a rule that matches a call
  can ask *where* the value flows (into a subscript key? a comparison?);
* an **import table** mapping local names to their dotted origins
  (``np`` → ``numpy``, ``perf_counter`` → ``time.perf_counter``), so bans
  are expressed against canonical module paths, not spelling variants;
* a **scope index** of names bound by enclosing functions, so a local
  variable or parameter that shadows ``id``/``open``/an import is never
  mistaken for the builtin or module it hides.

The package is deliberately self-contained: it imports nothing from the
simulation layers it polices (enforced by its own REP005 layering rule).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "Finding",
    "ModuleContext",
    "build_context",
    "dotted_origin",
    "module_package",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``line``/``col`` are 1-based (GitHub annotation convention; ``ast``
    column offsets are shifted by one at construction sites).
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class _ScopeCollector(ast.NodeVisitor):
    """Collects the names a function scope binds, without descending into
    nested scopes (each nested function gets its own collector pass)."""

    def __init__(self) -> None:
        self.bound: set[str] = set()

    def _bind_target(self, target: ast.expr) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                self.bound.add(node.id)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self.bound.add(node.id)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.bound.add(node.name)  # the def itself binds; body is a new scope

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.bound.add(node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.bound.add(node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # new scope

    def visit_ListComp(self, node: ast.ListComp) -> None:
        pass  # comprehension targets live in their own scope

    visit_SetComp = visit_ListComp
    visit_DictComp = visit_ListComp
    visit_GeneratorExp = visit_ListComp

    def visit_Import(self, node: ast.Import) -> None:
        pass  # imports resolve through the import table, never as shadows

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        pass

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self.bound.add(node.name)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        pass

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        pass


def _collect_scope_bindings(scope: ast.AST) -> set[str]:
    """Names bound directly inside ``scope`` (a function/lambda/module)."""
    collector = _ScopeCollector()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = scope.args
        for arg in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *((args.vararg,) if args.vararg else ()),
            *((args.kwarg,) if args.kwarg else ()),
        ):
            collector.bound.add(arg.arg)
        body = scope.body if isinstance(scope.body, list) else [scope.body]
        for stmt in body:
            collector.visit(stmt)
    else:
        for stmt in getattr(scope, "body", []):
            collector.visit(stmt)
    return collector.bound


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass
class ModuleContext:
    """One parsed source file plus the indexes the rules consume."""

    path: str
    module: str  # dotted module name, e.g. "repro.cluster.simulator"
    source: str
    tree: ast.Module
    #: local name -> dotted origin ("np" -> "numpy",
    #: "perf_counter" -> "time.perf_counter"). Function-local imports are
    #: folded in too: the origin is what matters, not where it was bound.
    imports: dict[str, str] = field(default_factory=dict)
    _parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    _scope_bindings: dict[ast.AST, set[str]] = field(default_factory=dict)

    @property
    def package(self) -> str | None:
        """The ``repro`` sub-package this module lives in, or None."""
        return module_package(self.module)

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST):
        """Walk outward from ``node`` toward the module root."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def is_shadowed(self, name: str, at: ast.AST) -> bool:
        """True when an enclosing function scope rebinds ``name``.

        Module-level rebindings of builtins/imports are not tracked here —
        the import table already wins for imports, and a module-level
        ``id = ...`` would be flagged by ruff's A-family anyway.
        """
        for ancestor in self.ancestors(at):
            if isinstance(ancestor, _SCOPE_NODES):
                bindings = self._scope_bindings.get(ancestor)
                if bindings is None:
                    bindings = _collect_scope_bindings(ancestor)
                    self._scope_bindings[ancestor] = bindings
                if name in bindings:
                    return True
        return False

    def resolve_call_origin(self, func: ast.expr, at: ast.AST) -> str | None:
        """Canonical dotted origin of a call target, or None.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        when ``np`` was imported as numpy; a bare unshadowed name with no
        import resolves to itself (the builtin namespace): ``id`` → ``id``.
        """
        return dotted_origin(self, func, at)


def dotted_origin(
    ctx: ModuleContext, node: ast.expr, at: ast.AST
) -> str | None:
    """Resolve an attribute chain / name to its canonical dotted path."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    base = current.id
    parts.append(base)
    parts.reverse()
    if ctx.is_shadowed(base, at):
        return None
    origin = ctx.imports.get(base)
    if origin is not None:
        return ".".join([origin, *parts[1:]])
    return ".".join(parts)


def module_package(module: str) -> str | None:
    """``repro.cluster.simulator`` → ``cluster``; non-repro → None.

    The top-level facade (``repro`` / ``repro.__init__``) has no layer and
    returns None: it may re-export anything.
    """
    parts = module.split(".")
    if len(parts) >= 2 and parts[0] == "repro":
        return parts[1]
    return None


def _index_parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _index_imports(tree: ast.Module) -> dict[str, str]:
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                # "import a.b" binds "a" to module "a"; with an alias the
                # full dotted path is bound.
                table[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                continue  # relative imports carry no canonical origin here
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


def build_context(source: str, path: str, module: str) -> ModuleContext:
    """Parse ``source`` and build the full rule-facing context.

    Raises :class:`SyntaxError` — the runner turns that into a REP000
    finding rather than crashing the whole lint run.
    """
    tree = ast.parse(source, filename=path)
    return ModuleContext(
        path=path,
        module=module,
        source=source,
        tree=tree,
        imports=_index_imports(tree),
        _parents=_index_parents(tree),
    )
