"""Finding reporters: ``text`` for humans, ``json`` for tooling,
``github`` for workflow annotations.

The GitHub format emits one ``::error`` workflow command per finding, so
the ``static-analysis`` CI job surfaces violations inline on the PR diff
exactly like the ruff job's annotations.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.core import Finding

__all__ = ["FORMATS", "render"]

FORMATS = ("text", "json", "github")


def _render_text(findings: Sequence[Finding], checked: int) -> str:
    lines = [finding.render() for finding in findings]
    noun = "file" if checked == 1 else "files"
    if findings:
        count = len(findings)
        lines.append(
            f"{count} finding{'s' if count != 1 else ''} in {checked} {noun}"
        )
    else:
        lines.append(f"clean: {checked} {noun} checked")
    return "\n".join(lines)


def _render_json(findings: Sequence[Finding], checked: int) -> str:
    return json.dumps(
        {
            "files_checked": checked,
            "findings": [
                {
                    "path": finding.path,
                    "line": finding.line,
                    "col": finding.col,
                    "rule": finding.rule,
                    "message": finding.message,
                }
                for finding in findings
            ],
        },
        indent=2,
    )


def _render_github(findings: Sequence[Finding], checked: int) -> str:
    lines = []
    for finding in findings:
        # Workflow-command data must escape %, CR and LF.
        message = (
            finding.message.replace("%", "%25")
            .replace("\r", "%0D")
            .replace("\n", "%0A")
        )
        lines.append(
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col},title={finding.rule}::{message}"
        )
    lines.append(_render_text((), checked) if not findings else
                 f"{len(findings)} findings in {checked} files")
    return "\n".join(lines)


def render(findings: Sequence[Finding], fmt: str, checked: int) -> str:
    if fmt == "text":
        return _render_text(findings, checked)
    if fmt == "json":
        return _render_json(findings, checked)
    if fmt == "github":
        return _render_github(findings, checked)
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")
