"""Rule registry: one place each checker declares its code and contract.

Rules register at import time via :func:`register`; the runner asks
:func:`all_rules` for the active set. Codes are the public, stable
interface — pragmas, CI annotations and docs all speak REP0xx — so
re-using or renumbering a code is an error the registry refuses.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.core import Finding, ModuleContext

__all__ = ["Rule", "register", "all_rules", "known_codes"]


class Rule:
    """Base class for one lint rule.

    Subclasses set ``code`` (``REP0xx``), ``name`` (kebab-case slug) and
    ``summary`` (one line, shown in ``--format text`` footers and docs),
    and implement :meth:`check` yielding findings for one module.
    """

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        """A finding anchored at ``node`` (1-based column)."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.code,
            message=message,
        )


_RULES: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and index a rule by its code."""
    rule = rule_cls()
    if not rule.code or not rule.name:
        raise ValueError(f"rule {rule_cls.__name__} must set code and name")
    existing = _RULES.get(rule.code)
    if existing is not None and type(existing) is not rule_cls:
        raise ValueError(
            f"rule code {rule.code} already registered by "
            f"{type(existing).__name__}"
        )
    _RULES[rule.code] = rule
    return rule_cls


def all_rules() -> Iterator[Rule]:
    """Registered rules, in code order."""
    for code in sorted(_RULES):
        yield _RULES[code]


def known_codes() -> set[str]:
    """Every valid pragma target: rule codes plus REP000 itself."""
    return {"REP000", *_RULES}
