"""reprolint — static enforcement of this repository's invariants.

Every load-bearing guarantee of the KEA reproduction — seed-determinism
of the simulator, serial == pooled == queue bit-identity, pickle-clean
wire types, cache keys covering every behavior-affecting field, the
out-of-band observability layering — was previously enforced only
dynamically, by tests that had to think to exercise the violating path.
This package is the static layer: an AST linter whose rules encode those
contracts directly, so an invariant-breaking change fails ``lint`` before
any test runs (KEA's own validate-before-production argument, applied to
the codebase itself).

Usage::

    python -m repro.analysis src tests benchmarks examples --format text

Suppressions are explicit and justified::

    tick = perf_counter()  # repro: allow[REP001] obs-gated; never enters state

and a pragma that suppresses nothing is itself an error (REP000).

The package is self-contained by design — it imports no simulation layer
(its own REP005 rule enforces that), so the linter can never be broken
by the code it polices.
"""

from repro.analysis.core import Finding, ModuleContext, build_context
from repro.analysis.registry import Rule, all_rules, known_codes, register
from repro.analysis.runner import (
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "build_context",
    "iter_python_files",
    "known_codes",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
]
