"""Lint orchestration: file discovery, per-file runs, suppression.

The flow per file: parse → run every registered rule → apply pragma
suppressions (marking each pragma used) → append pragma-syntax findings
and stale-pragma findings. A syntax error is not a crash but a REP000
finding — a linter that dies on the file most in need of review is
useless in CI.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator

import repro.analysis.rules  # noqa: F401  (registers every checker)
from repro.analysis.core import Finding, build_context
from repro.analysis.pragmas import STALE_RULE, collect_pragmas
from repro.analysis.registry import all_rules, known_codes

__all__ = ["lint_source", "lint_file", "lint_paths", "iter_python_files"]

_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache", "out"}


def module_name_for(path: str) -> str:
    """Best-effort dotted module name for ``path``.

    Files under a ``repro`` package directory get their real dotted name
    (``.../src/repro/cluster/simulator.py`` → ``repro.cluster.simulator``)
    so the package-scoped rules (REP001, REP005) know which layer they
    are looking at; anything else — tests, benchmarks, examples — is
    identified by its stem and only the package-agnostic rules apply.
    """
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if "repro" in parts[:-1]:
        anchor = len(parts) - 2 - parts[-2::-1].index("repro")
        dotted = [*parts[anchor:-1], stem]
        if stem == "__init__":
            dotted = dotted[:-1]
        return ".".join(dotted)
    return stem


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: set[str] = set()
    collected: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            candidates = [path]
        else:
            candidates = []
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d
                    for d in dirs
                    if d not in _SKIP_DIRS and not d.startswith(".")
                )
                candidates.extend(
                    os.path.join(root, name)
                    for name in sorted(files)
                    if name.endswith(".py")
                )
        for candidate in candidates:
            marker = os.path.abspath(candidate)
            if marker not in seen:
                seen.add(marker)
                collected.append(candidate)
    return iter(collected)


def lint_source(
    source: str, path: str = "<string>", module: str | None = None
) -> list[Finding]:
    """Lint one source string (tests feed virtual modules through this).

    ``module`` overrides the path-derived dotted name, letting a fixture
    masquerade as e.g. ``repro.cluster.fake`` to exercise the
    package-scoped rules.
    """
    if module is None:
        module = module_name_for(path)
    codes = known_codes()
    pragma_set = collect_pragmas(source, path, codes)
    findings: list[Finding] = list(pragma_set.errors)
    try:
        ctx = build_context(source, path, module)
    except SyntaxError as exc:
        findings.append(
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                rule=STALE_RULE,
                message=f"syntax error: {exc.msg}",
            )
        )
        return findings
    for rule in all_rules():
        for finding in rule.check(ctx):
            if not pragma_set.suppress(finding):
                findings.append(finding)
    findings.extend(pragma_set.stale_findings(path, codes))
    findings.sort()
    return findings


def lint_file(path: str) -> list[Finding]:
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path)


def lint_paths(paths: Iterable[str]) -> tuple[list[Finding], int]:
    """Lint every python file under ``paths``.

    Returns ``(findings, files_checked)`` — the file count feeds the
    reporters' summaries.
    """
    findings: list[Finding] = []
    checked = 0
    for path in iter_python_files(paths):
        checked += 1
        findings.extend(lint_file(path))
    findings.sort()
    return findings, checked
