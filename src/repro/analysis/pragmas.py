"""``# repro: allow[REP0xx] reason`` suppression pragmas.

A pragma suppresses named rules on exactly one line of code:

* trailing — ``x = id(y)  # repro: allow[REP002] diagnostics only`` —
  suppresses findings on its own line;
* standalone — a comment-only line — suppresses findings on the next line
  that contains code.

Several codes may be listed: ``allow[REP001,REP002]``. Discipline is part
of the contract, so pragma misuse is itself a REP000 finding: a pragma
without a written reason, with an unknown rule code, malformed after the
``# repro:`` introducer, or — crucially — one that suppressed nothing
(stale pragmas rot into false confidence that a violation is still there
and still justified).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.core import Finding

__all__ = ["Pragma", "PragmaSet", "collect_pragmas"]

STALE_RULE = "REP000"

_INTRODUCER = re.compile(r"#\s*repro:\s*(?P<rest>.*)$")
_ALLOW = re.compile(
    r"^allow\[(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\]\s*(?P<reason>.*)$"
)


@dataclass
class Pragma:
    """One parsed ``allow`` pragma and its suppression bookkeeping."""

    line: int  # line the comment sits on
    target_line: int  # line of code it suppresses
    codes: tuple[str, ...]
    reason: str
    used: set[str] = field(default_factory=set)

    def suppresses(self, rule: str, line: int) -> bool:
        return line == self.target_line and rule in self.codes

    def mark_used(self, rule: str) -> None:
        self.used.add(rule)


@dataclass
class PragmaSet:
    """All pragmas of one file, plus the pragma-syntax findings."""

    pragmas: list[Pragma] = field(default_factory=list)
    errors: list[Finding] = field(default_factory=list)

    def suppress(self, finding: Finding) -> bool:
        """Consume a suppression for ``finding`` if one matches."""
        for pragma in self.pragmas:
            if pragma.suppresses(finding.rule, finding.line):
                pragma.mark_used(finding.rule)
                return True
        return False

    def stale_findings(self, path: str, known_codes: set[str]) -> list[Finding]:
        """REP000 findings for pragma codes that suppressed nothing."""
        stale = []
        for pragma in self.pragmas:
            for code in pragma.codes:
                if code in pragma.used:
                    continue
                stale.append(
                    Finding(
                        path=path,
                        line=pragma.line,
                        col=1,
                        rule=STALE_RULE,
                        message=(
                            f"stale pragma: allow[{code}] suppressed nothing "
                            "on its target line — delete it or re-justify it"
                        ),
                    )
                )
        return stale


def collect_pragmas(source: str, path: str, known_codes: set[str]) -> PragmaSet:
    """Tokenize ``source`` and extract every ``# repro:`` pragma.

    Tokenization (not regex over lines) keeps pragma-shaped text inside
    string literals — test fixtures, docs — from being treated as live
    pragmas.
    """
    result = PragmaSet()
    comments: list[tuple[int, int, str]] = []  # (line, col, text)
    code_lines: set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return result  # the parser will report the syntax problem
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            comments.append((tok.start[0], tok.start[1], tok.string))
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            for line in range(tok.start[0], tok.end[0] + 1):
                code_lines.add(line)

    for line, col, text in comments:
        introducer = _INTRODUCER.match(text)
        if introducer is None:
            continue
        rest = introducer.group("rest").strip()
        allow = _ALLOW.match(rest)
        if allow is None:
            result.errors.append(
                Finding(
                    path=path,
                    line=line,
                    col=col + 1,
                    rule=STALE_RULE,
                    message=(
                        "malformed pragma: expected "
                        "'# repro: allow[REP0xx] reason', got "
                        f"{text.strip()!r}"
                    ),
                )
            )
            continue
        codes = tuple(
            code.strip() for code in allow.group("codes").split(",")
        )
        unknown = [code for code in codes if code not in known_codes]
        if unknown:
            result.errors.append(
                Finding(
                    path=path,
                    line=line,
                    col=col + 1,
                    rule=STALE_RULE,
                    message=(
                        f"pragma names unknown rule(s) {', '.join(unknown)}; "
                        f"known: {', '.join(sorted(known_codes))}"
                    ),
                )
            )
            continue
        reason = allow.group("reason").strip()
        if not reason:
            result.errors.append(
                Finding(
                    path=path,
                    line=line,
                    col=col + 1,
                    rule=STALE_RULE,
                    message=(
                        f"pragma allow[{','.join(codes)}] carries no reason — "
                        "every suppression must say why the violation is safe"
                    ),
                )
            )
            continue
        if line in code_lines:
            target = line
        else:
            later = [code_line for code_line in code_lines if code_line > line]
            if not later:
                result.errors.append(
                    Finding(
                        path=path,
                        line=line,
                        col=col + 1,
                        rule=STALE_RULE,
                        message="standalone pragma has no following line of code",
                    )
                )
                continue
            target = min(later)
        result.pragmas.append(
            Pragma(line=line, target_line=target, codes=codes, reason=reason)
        )
    return result
