"""System conceptualization: the abstraction ladder of Figure 4, as code.

Each abstraction level of Section 3.2 rests on a *verifiable statistical
claim* about the system. Phase I of the methodology is precisely the exercise
of validating those claims on telemetry before trusting any model built on
them. This module encodes the ladder and its validators:

* Level II (job level): recurring jobs have stable runtimes — implicit SLOs
  are meaningful.
* Level III (task level): slow machines hold a disproportionate share of
  critical-path tasks, so protecting slow-task latency protects job runtime.
* Level IV (machine level): the scheduler spreads task types uniformly across
  racks, so machines see representative workloads.
* Level V (machine-group level): the spread is uniform across SKUs too, so
  modeling per SC–SKU group loses nothing material.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.records import JobRecord, TaskLog

__all__ = [
    "AbstractionLevel",
    "ABSTRACTION_LADDER",
    "ValidationOutcome",
    "validate_implicit_slos",
    "validate_critical_path_bias",
    "validate_uniform_task_spread",
    "ConceptualizationReport",
    "conceptualize",
]


@dataclass(frozen=True, slots=True)
class AbstractionLevel:
    """One rung of the Figure 4 ladder."""

    level: int
    name: str
    models_what: str
    ignores_what: str
    rests_on: str


ABSTRACTION_LADDER: tuple[AbstractionLevel, ...] = (
    AbstractionLevel(
        1, "Full system", "jobs, tasks, machines, and all interactions",
        "nothing (intractable)", "—",
    ),
    AbstractionLevel(
        2, "Job level", "job runtimes against implicit SLOs",
        "which cluster resources served the job",
        "recurring jobs have predictable runtimes (implicit SLOs)",
    ),
    AbstractionLevel(
        3, "Task level", "slow tasks on the critical path",
        "intra-job DAG structure beyond stage barriers",
        "job runtimes are dominated by slow tasks in the critical path",
    ),
    AbstractionLevel(
        4, "Machine level", "per-machine performance metrics",
        "task-to-task interactions",
        "the scheduler randomizes tasks uniformly across nodes",
    ),
    AbstractionLevel(
        5, "Machine-group level", "per SC–SKU group metrics",
        "machine-level idiosyncrasies",
        "tasks are spread uniformly across SKUs as well",
    ),
)


@dataclass(frozen=True, slots=True)
class ValidationOutcome:
    """Result of validating one abstraction level's claim."""

    level: int
    claim: str
    statistic: float
    threshold: float
    passed: bool
    detail: str


def validate_implicit_slos(
    jobs: list[JobRecord], max_median_cv: float = 0.5, min_instances: int = 5
) -> ValidationOutcome:
    """Level II: per-template runtime coefficient of variation is modest."""
    by_template: dict[str, list[float]] = {}
    for job in jobs:
        by_template.setdefault(job.template, []).append(job.runtime)
    cvs = []
    for runtimes in by_template.values():
        if len(runtimes) < min_instances:
            continue
        arr = np.asarray(runtimes)
        if arr.mean() > 0:
            cvs.append(arr.std(ddof=1) / arr.mean())
    if not cvs:
        return ValidationOutcome(
            2, "recurring jobs have implicit SLOs", float("nan"), max_median_cv,
            False, "no template had enough instances to assess",
        )
    median_cv = float(np.median(cvs))
    return ValidationOutcome(
        level=2,
        claim="recurring jobs have implicit SLOs",
        statistic=median_cv,
        threshold=max_median_cv,
        passed=median_cv <= max_median_cv,
        detail=f"median runtime CV across {len(cvs)} templates = {median_cv:.2f}",
    )


def validate_critical_path_bias(
    task_log: TaskLog, min_ratio: float = 1.5
) -> ValidationOutcome:
    """Level III: the slowest SKU is over-represented on critical paths.

    Compares the critical-task share of the slowest SKU (by mean task
    duration) against the fastest; Figure 5's claim holds when the ratio is
    comfortably above 1.
    """
    durations = task_log.durations_by_sku()
    shares = task_log.critical_share_by_sku()
    usable = {sku for sku in durations if sku in shares and durations[sku].size >= 30}
    if len(usable) < 2:
        return ValidationOutcome(
            3, "slow machines dominate critical paths", float("nan"), min_ratio,
            False, "need at least two SKUs with enough logged tasks",
        )
    slowest = max(usable, key=lambda sku: float(durations[sku].mean()))
    fastest = min(usable, key=lambda sku: float(durations[sku].mean()))
    fast_share = shares[fastest]
    ratio = shares[slowest] / fast_share if fast_share > 0 else float("inf")
    return ValidationOutcome(
        level=3,
        claim="slow machines dominate critical paths",
        statistic=float(ratio),
        threshold=min_ratio,
        passed=ratio >= min_ratio,
        detail=(
            f"critical share {slowest}={shares[slowest]:.2%} vs "
            f"{fastest}={fast_share:.2%} (ratio {ratio:.1f}x)"
        ),
    )


def _total_variation(p: dict[str, float], q: dict[str, float]) -> float:
    ops = set(p) | set(q)
    return 0.5 * sum(abs(p.get(op, 0.0) - q.get(op, 0.0)) for op in ops)


def validate_uniform_task_spread(
    task_log: TaskLog, key: str, max_distance: float = 0.1, min_tasks: int = 50
) -> ValidationOutcome:
    """Level IV/V: task-type mix per rack/SKU matches the overall mix.

    Statistic: the worst total-variation distance between any group's
    operator mix and the cluster-wide mix (Figure 6 visually shows ≈ 0).
    """
    level = 4 if key == "rack" else 5
    mixes = task_log.op_mix_by(key)
    counts: dict[object, int] = {}
    for group in mixes:
        counts[group] = sum(
            1 for g in (task_log.rack if key == "rack" else task_log.sku) if g == group
        )
    overall: dict[str, float] = {}
    total = len(task_log)
    if total == 0:
        return ValidationOutcome(
            level, f"uniform task spread across {key}s", float("nan"),
            max_distance, False, "task log is empty",
        )
    for op in task_log.op:
        overall[op] = overall.get(op, 0.0) + 1.0 / total
    distances = {
        group: _total_variation(mix, overall)
        for group, mix in mixes.items()
        if counts.get(group, 0) >= min_tasks
    }
    if not distances:
        return ValidationOutcome(
            level, f"uniform task spread across {key}s", float("nan"),
            max_distance, False, f"no {key} group has {min_tasks}+ logged tasks",
        )
    worst_group = max(distances, key=distances.get)
    worst = distances[worst_group]
    return ValidationOutcome(
        level=level,
        claim=f"uniform task spread across {key}s",
        statistic=float(worst),
        threshold=max_distance,
        passed=worst <= max_distance,
        detail=(
            f"worst total-variation distance {worst:.3f} at {key} "
            f"{worst_group!r} over {len(distances)} groups"
        ),
    )


@dataclass
class ConceptualizationReport:
    """All validation outcomes for the abstraction ladder."""

    outcomes: list[ValidationOutcome]

    @property
    def all_passed(self) -> bool:
        """True when every validated claim held."""
        return all(outcome.passed for outcome in self.outcomes)

    def summary(self) -> str:
        """One line per level."""
        lines = []
        for outcome in self.outcomes:
            status = "PASS" if outcome.passed else "FAIL"
            lines.append(
                f"Level {outcome.level} [{status}] {outcome.claim}: {outcome.detail}"
            )
        return "\n".join(lines)


def conceptualize(
    jobs: list[JobRecord], task_log: TaskLog
) -> ConceptualizationReport:
    """Validate Levels II–V on telemetry (the Phase I deliverable)."""
    return ConceptualizationReport(
        outcomes=[
            validate_implicit_slos(jobs),
            validate_critical_path_bias(task_log),
            validate_uniform_task_spread(task_log, key="rack"),
            validate_uniform_task_spread(task_log, key="sku"),
        ]
    )
