"""The What-if Engine (Section 5.1).

Calibrates, per machine group k, the paper's model family on daily-aggregated
observational telemetry:

* ``g_k``: average running containers → CPU utilization (Eq. 1–2)
* ``h_k``: CPU utilization → tasks finished per hour (Eq. 3–4)
* ``f_k``: CPU utilization → average task latency (Eq. 5–6)

and answers "what if group k ran m containers?" questions by chaining them.
Because the natural variance of cluster operation covers a full spectrum of
utilization levels (Figure 8), the relations can be fitted without any
experiments — the key insight enabling observational tuning.

The default regressor is Huber (Section 5.2.1); a quantile regressor can be
swapped in to model heavy-load conditions (the "higher percentile" run of
Section 5.2.1).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.ml.huber import HuberRegressor
from repro.ml.model import LinearModelBase
from repro.ml.registry import (
    RELATION_F,
    RELATION_G,
    RELATION_H,
    CalibratedRelation,
    ModelRegistry,
    Relation,
)
from repro.telemetry.monitor import MachineDayRecord, PerformanceMonitor
from repro.utils.errors import ModelNotCalibratedError, TelemetryError

__all__ = ["GroupOperatingPoint", "GroupPrediction", "CalibrationReport", "WhatIfEngine"]

_G = Relation(RELATION_G, "AverageRunningContainers", "CpuUtilization")
_H = Relation(RELATION_H, "CpuUtilization", "TasksPerHour")
_F = Relation(RELATION_F, "CpuUtilization", "AverageTaskSeconds")


@dataclass(frozen=True, slots=True)
class GroupOperatingPoint:
    """The current (primed) operating point of one machine group.

    These are the m'_k, x'_k, l'_k, w'_k of Eq. 2/4/6 — medians over the
    group's machine-day observations.
    """

    group: str
    n_observations: int
    containers: float  # m'_k
    utilization: float  # x'_k
    tasks_per_hour: float  # l'_k
    task_latency: float  # w'_k


@dataclass(frozen=True, slots=True)
class GroupPrediction:
    """What-if prediction for one group at a hypothetical container level."""

    group: str
    containers: float  # m_k
    utilization: float  # x_k = g_k(m_k)
    tasks_per_hour: float  # l_k = h_k(x_k)
    task_latency: float  # w_k = f_k(x_k)


@dataclass
class CalibrationReport:
    """What was calibrated, what was skipped, and how well it fits."""

    calibrated: list[CalibratedRelation]
    skipped_groups: dict[str, str]

    def groups(self) -> list[str]:
        """Sorted calibrated group labels."""
        return sorted({c.group for c in self.calibrated})

    def min_r_squared(self) -> float:
        """Worst fit quality across all calibrated relations."""
        if not self.calibrated:
            return 0.0
        return min(c.fit.r_squared for c in self.calibrated)


class WhatIfEngine:
    """Calibrates and queries the g/h/f model family."""

    def __init__(
        self,
        model_factory: Callable[[], LinearModelBase] = HuberRegressor,
        min_observations: int = 6,
    ):
        if min_observations < 2:
            raise ValueError("min_observations must be >= 2")
        self.model_factory = model_factory
        self.min_observations = min_observations
        self.registry = ModelRegistry()
        self._operating_points: dict[str, GroupOperatingPoint] = {}

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def calibrate(self, monitor: PerformanceMonitor) -> CalibrationReport:
        """Fit g/h/f for every machine group with enough daily observations."""
        aggregates = monitor.daily_aggregates()
        if not aggregates:
            raise TelemetryError("no machine-day observations to calibrate from")
        by_group: dict[str, list[MachineDayRecord]] = {}
        for record in aggregates:
            by_group.setdefault(record.group, []).append(record)

        calibrated: list[CalibratedRelation] = []
        skipped: dict[str, str] = {}
        for group, rows in sorted(by_group.items()):
            rows = [r for r in rows if r.tasks_finished > 0]
            if len(rows) < self.min_observations:
                skipped[group] = (
                    f"only {len(rows)} usable machine-day observations "
                    f"(need {self.min_observations})"
                )
                continue
            containers = np.array([r.avg_running_containers for r in rows])
            utilization = np.array([r.cpu_utilization for r in rows])
            tasks_per_hour = np.array([r.tasks_per_hour for r in rows])
            latency = np.array([r.avg_task_seconds for r in rows])
            if float(np.std(containers)) < 1e-9 or float(np.std(utilization)) < 1e-9:
                skipped[group] = "no variance in containers/utilization to learn from"
                continue
            calibrated.append(
                self.registry.calibrate(group, _G, containers, utilization,
                                        self.model_factory)
            )
            calibrated.append(
                self.registry.calibrate(group, _H, utilization, tasks_per_hour,
                                        self.model_factory)
            )
            calibrated.append(
                self.registry.calibrate(group, _F, utilization, latency,
                                        self.model_factory)
            )
            self._operating_points[group] = GroupOperatingPoint(
                group=group,
                n_observations=len(rows),
                containers=float(np.median(containers)),
                utilization=float(np.median(utilization)),
                tasks_per_hour=float(np.median(tasks_per_hour)),
                task_latency=float(np.median(latency)),
            )
        return CalibrationReport(calibrated=calibrated, skipped_groups=skipped)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def groups(self) -> list[str]:
        """Calibrated group labels."""
        return sorted(self._operating_points)

    def operating_point(self, group: str) -> GroupOperatingPoint:
        """Current operating point of a calibrated group."""
        try:
            return self._operating_points[group]
        except KeyError:
            raise ModelNotCalibratedError(
                f"group {group!r} was never calibrated"
            ) from None

    def predict(self, group: str, containers: float) -> GroupPrediction:
        """Chain g→h/f: the full what-if for ``containers`` on ``group``."""
        utilization = float(self.registry.predict(group, RELATION_G, containers))
        utilization = min(max(utilization, 0.0), 1.0)
        return GroupPrediction(
            group=group,
            containers=containers,
            utilization=utilization,
            tasks_per_hour=max(
                0.0, float(self.registry.predict(group, RELATION_H, utilization))
            ),
            task_latency=max(
                0.0, float(self.registry.predict(group, RELATION_F, utilization))
            ),
        )

    def latency_affine_in_containers(self, group: str) -> tuple[float, float]:
        """(slope, intercept) of w_k as an affine function of m_k.

        w = f(g(m)) and both f, g are affine, so w = (f.s·g.s)·m +
        (f.i + f.s·g.i). This is what linearizes the LP constraint (Eq. 8–10).
        """
        g = self.registry.get(group, RELATION_G).model
        f = self.registry.get(group, RELATION_F).model
        slope = f.slope * g.slope
        intercept = f.intercept + f.slope * g.intercept
        return float(slope), float(intercept)

    def utilization_affine_in_containers(self, group: str) -> tuple[float, float]:
        """(slope, intercept) of x_k as an affine function of m_k."""
        g = self.registry.get(group, RELATION_G).model
        return float(g.slope), float(g.intercept)
