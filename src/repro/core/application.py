"""The unified tuning-application API (Table 3's "one architecture, many apps").

The paper's central claim is that a single pipeline — Performance Monitor →
What-if Engine → Optimizer → Flighting → Deployment — serves every tuning
application KEA runs, from YARN container limits to SKU purchase planning.
This module is that claim as code: a :class:`TuningApplication` defines one
typed lifecycle every application implements, and every consumer (the
:class:`~repro.core.kea.Kea` facade, the continuous tuning service's
:class:`~repro.service.campaign.Campaign`) drives applications only through
it:

* :meth:`~TuningApplication.parameter_space` — the knobs being tuned, as
  declarative :class:`ParameterSpec` values;
* :meth:`~TuningApplication.propose` — observation (+ optional calibrated
  engine) → a :class:`TuningProposal`, with the application's rich native
  result preserved in ``TuningProposal.details``;
* :meth:`~TuningApplication.flight_plan` — the serializable
  :class:`~repro.flighting.build.FlightPlan` of config builds to
  pilot-flight before rollout (empty when nothing is flightable);
* :meth:`~TuningApplication.rollout_plan` — the staged
  :class:`~repro.flighting.deployment.RolloutPlan` shipping a validated
  proposal across the fleet in widening waves (derived from the flight
  plan by default);
* :meth:`~TuningApplication.observation_spec` — the telemetry the
  application's observation windows must record
  (:class:`~repro.cluster.simulator.ObservationSpec`), carried through the
  campaign service's simulation pool and cache;
* :meth:`~TuningApplication.evaluate` — before/after observations → a
  :class:`TuningOutcome` on the application's primary metric;
* :meth:`~TuningApplication.apply` — fold an accepted proposal into the
  production :class:`~repro.cluster.config.YarnConfig` baseline.

Applications register themselves by name in the shared
:data:`APPLICATIONS` registry via the :func:`register_application`
decorator, which is what makes every scenario × application pair reachable
through one code path: ``Kea.run_application("queue-tuning")`` or a
``TenantSpec(application="queue-tuning")`` campaign.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import TYPE_CHECKING, Any, ClassVar

from repro.cluster.config import YarnConfig
from repro.cluster.simulator import ObservationSpec
from repro.cluster.software import MachineGroupKey
from repro.flighting.build import FlightPlan
from repro.flighting.deployment import RolloutCheckpoint, RolloutPlan, RolloutPolicy
from repro.utils.errors import ApplicationError

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids a kea import cycle
    from repro.core.kea import Kea, Observation
    from repro.core.whatif import WhatIfEngine

__all__ = [
    "ParameterSpec",
    "TuningProposal",
    "TuningOutcome",
    "TuningApplication",
    "ApplicationRegistry",
    "register_application",
    "APPLICATIONS",
]

#: The three tuning approaches of Section 4.2.
APPLICATION_MODES = ("observational", "hypothetical", "experimental")

_PARAMETER_KINDS = ("int", "float", "choice")


@dataclass(frozen=True, slots=True)
class ParameterSpec:
    """One knob an application tunes, declaratively.

    ``kind`` is ``"int"``/``"float"`` (with optional ``lower``/``upper``
    bounds) or ``"choice"`` (with explicit ``choices``). ``per_group`` marks
    knobs set independently per machine group (the paper's per-(SKU, SC)
    configuration granularity).
    """

    name: str
    description: str
    kind: str = "float"
    lower: float | None = None
    upper: float | None = None
    choices: tuple = ()
    per_group: bool = False
    unit: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ApplicationError("a parameter needs a non-empty name")
        if self.kind not in _PARAMETER_KINDS:
            raise ApplicationError(
                f"parameter {self.name!r}: kind must be one of {_PARAMETER_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.kind == "choice" and not self.choices:
            raise ApplicationError(
                f"parameter {self.name!r}: a choice parameter needs choices"
            )
        if (
            self.lower is not None
            and self.upper is not None
            and self.lower > self.upper
        ):
            raise ApplicationError(
                f"parameter {self.name!r}: lower {self.lower} > upper {self.upper}"
            )


@dataclass
class TuningProposal:
    """What one application run proposes, in lifecycle-neutral terms.

    ``proposed_config`` is the deployable YARN config (None for advisory
    applications whose output is a purchase or rollout *decision*, not a
    config change); ``config_deltas`` are the per-group container deltas a
    pilot flight can exercise; ``baseline_config`` is the config the
    proposal was derived against, letting :meth:`TuningApplication.flight_plan`
    pilot only what actually changed; ``details`` carries the application's
    rich native result
    (:class:`~repro.core.applications.yarn_config.YarnTuningResult`,
    :class:`~repro.core.applications.queue_tuning.QueueTuningResult`, ...)
    untouched.
    """

    application: str
    summary: str
    proposed_config: YarnConfig | None = None
    config_deltas: dict[MachineGroupKey, int] = field(default_factory=dict)
    baseline_config: YarnConfig | None = None
    metrics: dict[str, float] = field(default_factory=dict)
    details: Any = None

    @property
    def is_advisory(self) -> bool:
        """True when there is no config to deploy (decision-only output)."""
        return self.proposed_config is None


@dataclass
class TuningOutcome:
    """Before/after judgement on an application's primary metric."""

    application: str
    metric: str
    before: float
    after: float
    improved: bool
    detail: str = ""

    @property
    def relative_change(self) -> float:
        """(after − before) / |before|, 0 when the baseline is zero."""
        if self.before == 0:
            return 0.0
        return (self.after - self.before) / abs(self.before)


class TuningApplication(abc.ABC):
    """The protocol every KEA tuning application implements.

    Subclasses set three class attributes — ``name`` (the registry key),
    ``mode`` (one of the Section 4.2 approaches), ``requires_engine``
    (whether :meth:`propose` needs a calibrated What-if Engine) — and the
    abstract lifecycle methods. ``primary_metric``/``higher_is_better``
    drive the default :meth:`evaluate`.

    Experimental and hypothetical applications may need to run simulations
    of their own (fresh experiment rounds, resource-sampled observations);
    they reach the production environment through :meth:`bind`/:attr:`host`,
    which the facade and the campaign service set before calling
    :meth:`propose`.
    """

    name: ClassVar[str]
    mode: ClassVar[str]
    requires_engine: ClassVar[bool] = False
    primary_metric: ClassVar[str] = "TotalDataRead"
    higher_is_better: ClassVar[bool] = True

    #: Metrics a pilot flight of this application measures (flighted vs
    #: control), and the single *direct* metric whose significant movement
    #: validates the flight — the paper's first check was that changing the
    #: container limit visibly changes observed running containers.
    #: ``flight_metric`` must be listed in ``flight_metrics``.
    flight_metrics: ClassVar[tuple[str, ...]] = (
        "AverageRunningContainers",
        "CpuUtilization",
    )
    flight_metric: ClassVar[str] = "AverageRunningContainers"

    _host: "Kea | None" = None
    _host_factory = None

    def bind(self, host: "Kea") -> "TuningApplication":
        """Attach the production environment this application tunes."""
        self._host = host
        self._host_factory = None
        return self

    def bind_deferred(self, factory) -> "TuningApplication":
        """Attach a zero-argument factory building the environment on demand.

        The campaign service uses this so applications that never touch
        :attr:`host` (the observational ones) never pay for building a
        full :class:`~repro.core.kea.Kea` per round.
        """
        self._host = None
        self._host_factory = factory
        return self

    @property
    def host(self) -> "Kea":
        """The bound environment; raises when the application is unbound."""
        if self._host is None and self._host_factory is not None:
            self._host = self._host_factory()
            self._host_factory = None
        if self._host is None:
            raise ApplicationError(
                f"application {self.name!r} is not bound to an environment; "
                "drive it through Kea.tune()/run_application() or call bind()"
            )
        return self._host

    def observation_spec(self) -> ObservationSpec:
        """The telemetry this application's observation windows must record.

        The declarative counterpart of :meth:`observation_overrides`: the
        campaign service attaches it to every observe
        :class:`~repro.service.pool.SimulationRequest`, so the application's
        telemetry needs (resource samples for SKU design, a dense task log)
        fan out through pool workers and fold into the cache key instead of
        triggering side-channel re-observation. Default: baseline telemetry.
        """
        return ObservationSpec()

    def observation_overrides(self) -> dict[str, Any]:
        """:meth:`observation_spec` as :meth:`~repro.core.kea.Kea.observe`
        kwargs, for callers driving the facade directly."""
        spec = self.observation_spec()
        overrides: dict[str, Any] = {}
        if not spec.is_default:
            overrides["sim_config"] = spec.to_sim_config()
        if spec.benchmark_period_hours is not None:
            overrides["benchmark_period_hours"] = spec.benchmark_period_hours
        return overrides

    @abc.abstractmethod
    def parameter_space(self) -> tuple[ParameterSpec, ...]:
        """The declarative knobs this application tunes."""

    @abc.abstractmethod
    def propose(
        self, observation: "Observation", engine: "WhatIfEngine | None" = None
    ) -> TuningProposal:
        """Turn one observation window (+ optional engine) into a proposal."""

    def flight_plan(self, proposal: TuningProposal) -> FlightPlan:
        """The config builds to pilot-flight before this proposal rolls out.

        Returns a serializable :class:`~repro.flighting.build.FlightPlan`
        (build × machine-selector entries) that
        :meth:`~repro.core.kea.Kea.flight_campaign` can apply and revert on
        pilot machines — any knob class, not just container counts. The
        default plans one conservative
        :class:`~repro.flighting.build.ContainerDeltaBuild` per group in
        ``proposal.config_deltas``; an empty plan means nothing is
        flightable.
        """
        return FlightPlan.from_container_deltas(proposal.config_deltas)

    def rollout_plan(
        self,
        proposal: TuningProposal,
        policy: RolloutPolicy | None = None,
    ) -> RolloutPlan:
        """The staged fleet rollout for an accepted, flight-validated proposal.

        Stages whatever :meth:`flight_plan` pilots across the fleet in
        widening waves (pilot → 10% → 50% → fleet under the default
        :class:`~repro.flighting.deployment.RolloutPolicy`), so the campaign
        DEPLOY phase ships queue bounds, software re-images, and power caps
        as progressively as container limits. Applications with richer
        rollout semantics (e.g. region-aware ordering) override; an empty
        plan means nothing is deployable in waves.
        """
        return RolloutPlan.from_flight_plan(self.flight_plan(proposal), policy)

    def resume_rollout_plan(
        self, plan: RolloutPlan, checkpoint: RolloutCheckpoint
    ) -> RolloutPlan:
        """Re-stage a halted rollout to re-enter at the failed wave.

        Returns ``plan`` with its policy pinned to the checkpoint's halted
        wave (``resume_from_wave``): execution restores the checkpointed
        coverage at window start instead of re-running the pilot, then
        widens from the failed wave onward, gates included.

        Overrides may adjust the *gating* of the re-entry — tighter
        ``gate_allowance``, longer soak gaps, a different
        ``gate_window_hours`` — but must keep the staged waves and the
        checkpoint's re-entry index intact:
        :meth:`~repro.flighting.deployment.DeploymentModule.resolve_resume`
        rejects a resume whose waves or ``resume_from_wave`` disagree with
        the checkpoint (a checkpoint's covered counts are only meaningful
        against the plan that produced them).
        """
        policy = dc_replace(
            plan.policy, resume_from_wave=checkpoint.halted_before_wave
        )
        return RolloutPlan(waves=plan.waves, policy=policy)

    def evaluate(
        self, before: "Observation", after: "Observation"
    ) -> TuningOutcome:
        """Judge a before/after pair on :attr:`primary_metric`.

        ``improved`` is direction-aware; applications with richer evaluation
        logic (capacity + latency guard, queue-wait percentiles) override.
        """
        before_value = float(before.monitor.metric(self.primary_metric).mean())
        after_value = float(after.monitor.metric(self.primary_metric).mean())
        if self.higher_is_better:
            improved = after_value >= before_value
        else:
            improved = after_value <= before_value
        return TuningOutcome(
            application=self.name,
            metric=self.primary_metric,
            before=before_value,
            after=after_value,
            improved=improved,
            detail=(
                f"{self.primary_metric}: {before_value:.4g} → {after_value:.4g} "
                f"({'higher' if self.higher_is_better else 'lower'} is better)"
            ),
        )

    def apply(self, config: YarnConfig, proposal: TuningProposal) -> YarnConfig:
        """The new production baseline after adopting ``proposal``.

        Advisory proposals leave the config untouched.
        """
        if proposal.proposed_config is None:
            return config.copy()
        return proposal.proposed_config.copy()

    def require_engine(self, engine: "WhatIfEngine | None") -> "WhatIfEngine":
        """Helper for engine-backed applications: fail loudly when missing."""
        if engine is None:
            raise ApplicationError(
                f"application {self.name!r} needs a calibrated What-if Engine; "
                "pass one to propose() (Kea.tune() calibrates automatically)"
            )
        return engine


class ApplicationRegistry:
    """Named :class:`TuningApplication` classes, in registration order."""

    def __init__(self) -> None:
        self._classes: dict[str, type[TuningApplication]] = {}

    def register(
        self, cls: type[TuningApplication]
    ) -> type[TuningApplication]:
        """Register an application class under its ``name``."""
        name = getattr(cls, "name", None)
        if not isinstance(name, str) or not name:
            raise ApplicationError(
                f"{cls.__name__} needs a non-empty string `name` class attribute"
            )
        mode = getattr(cls, "mode", None)
        if mode not in APPLICATION_MODES:
            raise ApplicationError(
                f"{cls.__name__}.mode must be one of {APPLICATION_MODES}, "
                f"got {mode!r}"
            )
        if cls.flight_metric not in cls.flight_metrics:
            raise ApplicationError(
                f"{cls.__name__}.flight_metric {cls.flight_metric!r} must be "
                f"one of its flight_metrics {cls.flight_metrics}"
            )
        if name in self._classes:
            raise ApplicationError(
                f"application {name!r} is already registered "
                f"({self._classes[name].__name__})"
            )
        self._classes[name] = cls
        return cls

    def get(self, name: str) -> type[TuningApplication]:
        """Look up an application class by name."""
        try:
            return self._classes[name]
        except KeyError:
            known = ", ".join(self._classes) or "(none)"
            raise ApplicationError(
                f"unknown application {name!r}; registry has: {known}"
            ) from None

    def create(self, name: str, **kwargs) -> TuningApplication:
        """Instantiate a registered application with constructor kwargs."""
        return self.get(name)(**kwargs)

    def names(self) -> list[str]:
        """Registered application names, in registration order."""
        return list(self._classes)

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self):
        return iter(self._classes.values())


APPLICATIONS = ApplicationRegistry()
"""The shared default registry; importing :mod:`repro.core.applications`
populates it with the paper's five applications."""


def register_application(cls=None, *, registry: ApplicationRegistry | None = None):
    """Class decorator registering a :class:`TuningApplication`.

    Usable bare (``@register_application``) against the shared
    :data:`APPLICATIONS` registry or with an explicit ``registry=`` for
    scratch registries in tests.
    """

    def wrap(klass: type[TuningApplication]) -> type[TuningApplication]:
        (registry if registry is not None else APPLICATIONS).register(klass)
        return klass

    if cls is not None:
        return wrap(cls)
    return wrap
