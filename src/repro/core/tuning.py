"""The three tuning approaches (Section 4.2), as orchestrated campaigns.

Each class names the Figure 7 modules it requires and runs the corresponding
end-to-end loop against a :class:`~repro.core.kea.Kea` environment:

* :class:`ObservationalTuning` — monitor → model → optimize → flight → deploy.
  No experiments: models are fitted purely on existing operating points.
* :class:`HypotheticalTuning` — monitor → model. No flighting, no deployment:
  the output configures machines that do not exist yet.
* :class:`ExperimentalTuning` — all modules, experiments included: the last
  resort when existing telemetry cannot predict a change's effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.simulator import SimulationConfig
from repro.core.applications.sku_design import SkuDesignResult, SkuDesignStudy
from repro.core.applications.yarn_config import YarnTuningResult
from repro.core.kea import DeploymentImpact, Kea
from repro.core.whatif import WhatIfEngine
from repro.flighting.tool import FlightReport

__all__ = [
    "ObservationalTuning",
    "ObservationalOutcome",
    "HypotheticalTuning",
    "HypotheticalOutcome",
    "ExperimentalTuning",
]


@dataclass
class ObservationalOutcome:
    """Everything an observational campaign produced."""

    tuning: YarnTuningResult
    flights: list[FlightReport]
    impact: DeploymentImpact
    adopted: bool

    def summary(self) -> str:
        """Campaign readout: proposal, flight count, deployment effects."""
        lines = [
            self.tuning.summary(),
            "",
            f"pilot flights run: {len(self.flights)}",
            self.impact.summary(),
            f"configuration adopted: {self.adopted}",
        ]
        return "\n".join(lines)


class ObservationalTuning:
    """Section 5's loop: models instead of experiments, flighting as safety."""

    required_modules = ("performance_monitor", "modeling", "flighting", "deployment")

    def __init__(self, kea: Kea):
        self.kea = kea

    def run(
        self,
        observe_days: float = 3.0,
        flight_hours: float = 24.0,
        deploy_days: float = 2.0,
        latency_guard: float = 0.02,
        **tuner_kwargs,
    ) -> ObservationalOutcome:
        """Full campaign; adopts the config only when latency holds.

        ``latency_guard`` is the maximum tolerated relative latency increase
        measured at deployment (the Level II constraint surrogate).
        """
        observation = self.kea.observe(days=observe_days)
        engine = self.kea.calibrate(observation.monitor)
        proposal = self.kea.tune(
            "yarn-config", observation=observation, engine=engine, **tuner_kwargs
        )
        tuning = proposal.details
        flights = self.kea.flight_validate(tuning, hours=flight_hours)
        impact = self.kea.deployment_impact(tuning.proposed_config, days=deploy_days)
        adopted = impact.latency.relative_effect <= latency_guard
        if adopted:
            self.kea.adopt(tuning.proposed_config)
        return ObservationalOutcome(
            tuning=tuning, flights=flights, impact=impact, adopted=adopted
        )


@dataclass
class HypotheticalOutcome:
    """A future-planning result (no deployment by construction)."""

    design: SkuDesignResult
    engine: WhatIfEngine | None = None
    notes: list[str] = field(default_factory=list)


class HypotheticalTuning:
    """Section 6's loop: model existing telemetry, plan future machines."""

    required_modules = ("performance_monitor", "modeling")

    def __init__(self, kea: Kea):
        self.kea = kea

    def run_sku_design(
        self,
        observe_days: float = 1.0,
        sample_sku: str = "Gen 4.1",
        sample_period_s: float = 60.0,
        sample_machines: int = 40,
        n_cores: int = 128,
        ram_candidates_gb: list[float] | None = None,
        ssd_candidates_gb: list[float] | None = None,
        study: SkuDesignStudy | None = None,
    ) -> HypotheticalOutcome:
        """Observe fine-grained resource usage, then sweep (RAM, SSD) designs."""
        observation = self.kea.observe(
            days=observe_days,
            sim_config=SimulationConfig(
                resource_sample_period_s=sample_period_s,
                resource_sample_machines=sample_machines,
                resource_sample_sku=sample_sku,
            ),
        )
        study = study if study is not None else SkuDesignStudy()
        study.fit_usage(observation.result.resource_samples)
        if ram_candidates_gb is None:
            ram_candidates_gb = [float(x) for x in range(64, 513, 64)]
        if ssd_candidates_gb is None:
            ssd_candidates_gb = [float(x) for x in range(500, 6001, 500)]
        design = study.sweep(
            ram_candidates_gb=ram_candidates_gb,
            ssd_candidates_gb=ssd_candidates_gb,
            n_cores=n_cores,
        )
        return HypotheticalOutcome(
            design=design,
            notes=[
                f"usage fitted on {study.usage.n_samples} samples of {sample_sku}",
                f"sweet spot: {design.best_ram_gb:.0f} GB RAM, "
                f"{design.best_ssd_gb:.0f} GB SSD for {n_cores} cores",
            ],
        )


class ExperimentalTuning:
    """Section 7's loop: flighted experiments when prediction is impossible.

    The concrete experiment drivers live in
    :mod:`repro.core.applications.power_capping` and
    :mod:`repro.core.applications.sc_selection`; this class exists to document
    the module footprint and gate the decision to experiment.
    """

    required_modules = (
        "performance_monitor",
        "modeling",
        "experiment",
        "flighting",
        "deployment",
    )

    #: Configuration kinds whose effects existing telemetry cannot predict
    #: (Section 4.2) — the justification check for running experiments.
    unpredictable_changes = ("software_configuration", "power_capping",
                             "new_hardware_feature")

    def __init__(self, kea: Kea):
        self.kea = kea

    @classmethod
    def justify(cls, change_kind: str) -> bool:
        """True when experimental tuning is warranted for this change kind."""
        return change_kind in cls.unpredictable_changes
