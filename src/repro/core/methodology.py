"""The three-phase KEA methodology (Section 3, Figure 3), as a workflow object.

A :class:`KeaProject` walks a tuning project through:

* **Phase I — Fact finding & system conceptualization**: record objectives,
  controllable configurations, constraints; validate the abstraction ladder
  on telemetry.
* **Phase II — Modeling & optimization**: calibrate the What-if Engine and
  run the application's optimizer.
* **Phase III — Deployment**: flighting for validation, then (simulated)
  production rollout.

The object is deliberately a *ledger*: each phase records its artifacts, the
project refuses to skip ahead, and ``to_markdown`` renders the whole history
— mirroring how the paper's DS/DX collaboration produces auditable outputs at
every step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.conceptualization import ConceptualizationReport
from repro.core.whatif import CalibrationReport
from repro.utils.errors import ConfigurationError

__all__ = ["Phase", "ProjectCharter", "KeaProject"]


class Phase(Enum):
    """Methodology phases in order."""

    FACT_FINDING = 1
    MODELING = 2
    DEPLOYMENT = 3
    COMPLETE = 4


@dataclass(frozen=True, slots=True)
class ProjectCharter:
    """The Phase I agreement between data scientists and domain experts."""

    name: str
    objective: str
    controllable_configurations: tuple[str, ...]
    constraints: tuple[str, ...]
    tuning_approach: str  # "observational" | "hypothetical" | "experimental"

    def __post_init__(self) -> None:
        if self.tuning_approach not in ("observational", "hypothetical", "experimental"):
            raise ConfigurationError(
                f"unknown tuning approach {self.tuning_approach!r}"
            )
        if not self.controllable_configurations:
            raise ConfigurationError("a project needs at least one controllable config")


@dataclass
class KeaProject:
    """A tuning project's phase ledger."""

    charter: ProjectCharter
    phase: Phase = Phase.FACT_FINDING
    conceptualization: ConceptualizationReport | None = None
    calibration: CalibrationReport | None = None
    optimization_summary: str | None = None
    flighting_notes: list[str] = field(default_factory=list)
    deployment_summary: str | None = None

    # ------------------------------------------------------------------
    # Phase transitions
    # ------------------------------------------------------------------
    def complete_fact_finding(self, report: ConceptualizationReport) -> None:
        """Close Phase I with a validated conceptualization."""
        self._expect(Phase.FACT_FINDING)
        self.conceptualization = report
        self.phase = Phase.MODELING

    def complete_modeling(
        self, calibration: CalibrationReport, optimization_summary: str
    ) -> None:
        """Close Phase II with calibrated models and the optimizer's output."""
        self._expect(Phase.MODELING)
        self.calibration = calibration
        self.optimization_summary = optimization_summary
        if self.charter.tuning_approach == "hypothetical":
            # Hypothetical tuning has no deployment (the machines don't exist).
            self.phase = Phase.COMPLETE
        else:
            self.phase = Phase.DEPLOYMENT

    def record_flight(self, note: str) -> None:
        """Append a flighting observation during Phase III."""
        self._expect(Phase.DEPLOYMENT)
        self.flighting_notes.append(note)

    def complete_deployment(self, summary: str) -> None:
        """Close Phase III after the production rollout."""
        self._expect(Phase.DEPLOYMENT)
        self.deployment_summary = summary
        self.phase = Phase.COMPLETE

    def _expect(self, phase: Phase) -> None:
        if self.phase != phase:
            raise ConfigurationError(
                f"project {self.charter.name!r} is in phase {self.phase.name}, "
                f"but this step belongs to {phase.name}"
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def to_markdown(self) -> str:
        """Render the project ledger."""
        lines = [
            f"# KEA project: {self.charter.name}",
            f"- objective: {self.charter.objective}",
            f"- tuning approach: {self.charter.tuning_approach}",
            f"- controllables: {', '.join(self.charter.controllable_configurations)}",
            f"- constraints: {', '.join(self.charter.constraints) or '(none)'}",
            f"- phase: {self.phase.name}",
        ]
        if self.conceptualization is not None:
            lines += ["", "## Phase I — conceptualization",
                      self.conceptualization.summary()]
        if self.calibration is not None:
            lines += [
                "",
                "## Phase II — modeling",
                f"calibrated {len(self.calibration.calibrated)} relations over "
                f"{len(self.calibration.groups())} machine groups "
                f"(min R² {self.calibration.min_r_squared():.2f}; "
                f"skipped: {sorted(self.calibration.skipped_groups) or 'none'})",
            ]
            if self.optimization_summary:
                lines += ["", "```", self.optimization_summary, "```"]
        if self.flighting_notes:
            lines += ["", "## Phase III — flighting"]
            lines += [f"- {note}" for note in self.flighting_notes]
        if self.deployment_summary:
            lines += ["", "## Phase III — deployment", self.deployment_summary]
        return "\n".join(lines)
