"""KEA core: the paper's contribution.

* :class:`~repro.core.kea.Kea` — the facade wiring Performance Monitor,
  Modeling, Experimentation, Flighting, and Deployment (Figure 7);
* :class:`~repro.core.whatif.WhatIfEngine` — the g/h/f calibrated model family;
* the unified application API (:mod:`repro.core.application`): one
  :class:`~repro.core.application.TuningApplication` lifecycle for all of
  Table 3, with the shared :data:`~repro.core.application.APPLICATIONS`
  registry;
* the three tuning approaches (:mod:`repro.core.tuning`);
* the applications of Table 3 (:mod:`repro.core.applications`);
* the methodology phases (:mod:`repro.core.methodology`) and abstraction
  validators (:mod:`repro.core.conceptualization`).
"""

from repro.core.application import (
    APPLICATIONS,
    ApplicationRegistry,
    ParameterSpec,
    TuningApplication,
    TuningOutcome,
    TuningProposal,
    register_application,
)
from repro.core.capacity import CapacityValuation, capacity_gain_fraction
from repro.core.conceptualization import (
    ABSTRACTION_LADDER,
    AbstractionLevel,
    ConceptualizationReport,
    ValidationOutcome,
    conceptualize,
    validate_critical_path_bias,
    validate_implicit_slos,
    validate_uniform_task_spread,
)
from repro.core.kea import (
    ApplicationRun,
    DeploymentImpact,
    FlightValidation,
    Kea,
    Observation,
    StagedRollout,
)
from repro.core.methodology import KeaProject, Phase, ProjectCharter
from repro.core.tuning import (
    ExperimentalTuning,
    HypotheticalOutcome,
    HypotheticalTuning,
    ObservationalOutcome,
    ObservationalTuning,
)
from repro.core.whatif import (
    CalibrationReport,
    GroupOperatingPoint,
    GroupPrediction,
    WhatIfEngine,
)

__all__ = [
    "APPLICATIONS",
    "ApplicationRegistry",
    "ApplicationRun",
    "ParameterSpec",
    "TuningApplication",
    "TuningOutcome",
    "TuningProposal",
    "register_application",
    "CapacityValuation",
    "capacity_gain_fraction",
    "ABSTRACTION_LADDER",
    "AbstractionLevel",
    "ConceptualizationReport",
    "ValidationOutcome",
    "conceptualize",
    "validate_critical_path_bias",
    "validate_implicit_slos",
    "validate_uniform_task_spread",
    "DeploymentImpact",
    "FlightValidation",
    "Kea",
    "Observation",
    "StagedRollout",
    "KeaProject",
    "Phase",
    "ProjectCharter",
    "ExperimentalTuning",
    "HypotheticalOutcome",
    "HypotheticalTuning",
    "ObservationalOutcome",
    "ObservationalTuning",
    "CalibrationReport",
    "GroupOperatingPoint",
    "GroupPrediction",
    "WhatIfEngine",
]
