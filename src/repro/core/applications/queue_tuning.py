"""Container-queue tuning (the Section 5.3 discussion, Figure 12).

When the whole cluster reaches its container limits, low-priority containers
queue on individual machines. Queue length and latency "vary significantly
for machines with different SKUs and SCs"; faster machines drain faster, so
they can safely hold longer queues. This application measures per-group queue
behaviour and recommends per-group maximum queue lengths that equalize
expected queueing delay — the same observational-tuning methodology applied
to a second knob.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.config import GroupLimits, YarnConfig
from repro.cluster.software import MachineGroupKey
from repro.telemetry.monitor import PerformanceMonitor
from repro.utils.errors import TelemetryError
from repro.utils.tables import TextTable

__all__ = ["QueueGroupStats", "QueueTuningResult", "QueueTuner"]


@dataclass(frozen=True, slots=True)
class QueueGroupStats:
    """Observed queueing behaviour of one machine group (Figure 12 bars)."""

    group: str
    avg_queue_length: float
    p99_wait_seconds: float
    mean_wait_seconds: float
    dequeue_rate_per_hour: float  # tasks finished per machine-hour ≈ drain rate


@dataclass
class QueueTuningResult:
    """Per-group stats plus the recommended queue limits."""

    stats: list[QueueGroupStats]
    recommended_limits: dict[MachineGroupKey, int]
    target_wait_seconds: float

    def summary(self) -> str:
        """Figure 12-style table plus the recommendation."""
        table = TextTable(
            ["group", "avg queue len", "p99 wait (s)", "drain rate (/h)",
             "recommended max queue"],
            title="Per-group container queueing",
        )
        recs = {k.label: v for k, v in self.recommended_limits.items()}
        for stat in sorted(self.stats, key=lambda s: s.group):
            table.add_row(
                [
                    stat.group,
                    f"{stat.avg_queue_length:.2f}",
                    f"{stat.p99_wait_seconds:.0f}",
                    f"{stat.dequeue_rate_per_hour:.0f}",
                    recs.get(stat.group, "-"),
                ]
            )
        return table.render()


class QueueTuner:
    """Derive per-group queue limits from saturated-cluster telemetry."""

    def __init__(self, target_wait_seconds: float = 300.0, min_limit: int = 1,
                 max_limit: int = 64):
        if target_wait_seconds <= 0:
            raise ValueError("target_wait_seconds must be positive")
        if not 1 <= min_limit <= max_limit:
            raise ValueError("need 1 <= min_limit <= max_limit")
        self.target_wait_seconds = target_wait_seconds
        self.min_limit = min_limit
        self.max_limit = max_limit

    def measure(self, monitor: PerformanceMonitor) -> list[QueueGroupStats]:
        """Aggregate queue telemetry per machine group."""
        stats: list[QueueGroupStats] = []
        for group, group_monitor in monitor.by_group().items():
            records = group_monitor.records
            waits: list[float] = []
            for record in records:
                waits.extend(record.queue.waits)
            avg_len = float(np.mean([r.queue.avg_length for r in records]))
            tasks_per_hour = float(np.mean([r.tasks_finished for r in records]))
            stats.append(
                QueueGroupStats(
                    group=group,
                    avg_queue_length=avg_len,
                    p99_wait_seconds=float(np.percentile(waits, 99)) if waits else 0.0,
                    mean_wait_seconds=float(np.mean(waits)) if waits else 0.0,
                    dequeue_rate_per_hour=tasks_per_hour,
                )
            )
        if not stats:
            raise TelemetryError("no telemetry to measure queue behaviour from")
        return stats

    def tune(self, monitor: PerformanceMonitor) -> QueueTuningResult:
        """Recommend per-group queue limits equalizing expected drain time.

        A queue of length L on a machine draining d tasks/hour waits ≈
        L·3600/d seconds to clear; solving for L at the target wait gives the
        per-group limit (clamped to [min_limit, max_limit]).
        """
        stats = self.measure(monitor)
        limits: dict[MachineGroupKey, int] = {}
        for stat in stats:
            drain_per_second = stat.dequeue_rate_per_hour / 3600.0
            raw = self.target_wait_seconds * drain_per_second
            limit = int(np.clip(round(raw), self.min_limit, self.max_limit))
            limits[MachineGroupKey.from_label(stat.group)] = limit
        return QueueTuningResult(
            stats=stats,
            recommended_limits=limits,
            target_wait_seconds=self.target_wait_seconds,
        )

    def apply_to_config(
        self, config: YarnConfig, result: QueueTuningResult
    ) -> YarnConfig:
        """Return a new YarnConfig carrying the recommended queue limits."""
        new = config.copy()
        for key, limit in result.recommended_limits.items():
            current = new.for_group(key)
            new.set_group(
                key,
                GroupLimits(
                    max_running_containers=current.max_running_containers,
                    max_queued_containers=limit,
                ),
            )
        return new
