"""Container-queue tuning (the Section 5.3 discussion, Figure 12).

When the whole cluster reaches its container limits, low-priority containers
queue on individual machines. Queue length and latency "vary significantly
for machines with different SKUs and SCs"; faster machines drain faster, so
they can safely hold longer queues. This application measures per-group queue
behaviour and recommends per-group maximum queue lengths that equalize
expected queueing delay — the same observational-tuning methodology applied
to a second knob.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.config import GroupLimits, YarnConfig
from repro.core.application import (
    ParameterSpec,
    TuningApplication,
    TuningOutcome,
    TuningProposal,
    register_application,
)
from repro.cluster.software import MachineGroupKey
from repro.flighting.build import FlightPlan, PlannedFlight, YarnLimitsBuild
from repro.telemetry.monitor import PerformanceMonitor
from repro.utils.errors import TelemetryError
from repro.utils.tables import TextTable

__all__ = [
    "QueueGroupStats",
    "QueueTuningResult",
    "QueueTuner",
    "QueueTuningApplication",
]


@dataclass(frozen=True, slots=True)
class QueueGroupStats:
    """Observed queueing behaviour of one machine group (Figure 12 bars)."""

    group: str
    avg_queue_length: float
    p99_wait_seconds: float
    mean_wait_seconds: float
    dequeue_rate_per_hour: float  # tasks finished per machine-hour ≈ drain rate


@dataclass
class QueueTuningResult:
    """Per-group stats plus the recommended queue limits."""

    stats: list[QueueGroupStats]
    recommended_limits: dict[MachineGroupKey, int]
    target_wait_seconds: float

    def summary(self) -> str:
        """Figure 12-style table plus the recommendation."""
        table = TextTable(
            ["group", "avg queue len", "p99 wait (s)", "drain rate (/h)",
             "recommended max queue"],
            title="Per-group container queueing",
        )
        recs = {k.label: v for k, v in self.recommended_limits.items()}
        for stat in sorted(self.stats, key=lambda s: s.group):
            table.add_row(
                [
                    stat.group,
                    f"{stat.avg_queue_length:.2f}",
                    f"{stat.p99_wait_seconds:.0f}",
                    f"{stat.dequeue_rate_per_hour:.0f}",
                    recs.get(stat.group, "-"),
                ]
            )
        return table.render()


class QueueTuner:
    """Derive per-group queue limits from saturated-cluster telemetry."""

    def __init__(self, target_wait_seconds: float = 300.0, min_limit: int = 1,
                 max_limit: int = 64):
        if target_wait_seconds <= 0:
            raise ValueError("target_wait_seconds must be positive")
        if not 1 <= min_limit <= max_limit:
            raise ValueError("need 1 <= min_limit <= max_limit")
        self.target_wait_seconds = target_wait_seconds
        self.min_limit = min_limit
        self.max_limit = max_limit

    def measure(self, monitor: PerformanceMonitor) -> list[QueueGroupStats]:
        """Aggregate queue telemetry per machine group."""
        stats: list[QueueGroupStats] = []
        for group, group_monitor in monitor.by_group().items():
            records = group_monitor.records
            waits: list[float] = []
            for record in records:
                waits.extend(record.queue.waits)
            avg_len = float(np.mean([r.queue.avg_length for r in records]))
            tasks_per_hour = float(np.mean([r.tasks_finished for r in records]))
            stats.append(
                QueueGroupStats(
                    group=group,
                    avg_queue_length=avg_len,
                    p99_wait_seconds=float(np.percentile(waits, 99)) if waits else 0.0,
                    mean_wait_seconds=float(np.mean(waits)) if waits else 0.0,
                    dequeue_rate_per_hour=tasks_per_hour,
                )
            )
        if not stats:
            raise TelemetryError("no telemetry to measure queue behaviour from")
        return stats

    def tune(self, monitor: PerformanceMonitor) -> QueueTuningResult:
        """Recommend per-group queue limits equalizing expected drain time.

        A queue of length L on a machine draining d tasks/hour waits ≈
        L·3600/d seconds to clear; solving for L at the target wait gives the
        per-group limit (clamped to [min_limit, max_limit]).
        """
        stats = self.measure(monitor)
        limits: dict[MachineGroupKey, int] = {}
        for stat in stats:
            drain_per_second = stat.dequeue_rate_per_hour / 3600.0
            raw = self.target_wait_seconds * drain_per_second
            limit = int(np.clip(round(raw), self.min_limit, self.max_limit))
            limits[MachineGroupKey.from_label(stat.group)] = limit
        return QueueTuningResult(
            stats=stats,
            recommended_limits=limits,
            target_wait_seconds=self.target_wait_seconds,
        )

    def apply_to_config(
        self, config: YarnConfig, result: QueueTuningResult
    ) -> YarnConfig:
        """Return a new YarnConfig carrying the recommended queue limits."""
        new = config.copy()
        for key, limit in result.recommended_limits.items():
            current = new.for_group(key)
            new.set_group(
                key,
                GroupLimits(
                    max_running_containers=current.max_running_containers,
                    max_queued_containers=limit,
                ),
            )
        return new


@register_application
class QueueTuningApplication(TuningApplication):
    """Per-group queue limits through the unified lifecycle (Section 5.3).

    Purely observational and engine-free: ``propose`` reads queue telemetry
    off the observation's monitor and emits a deployable config carrying the
    recommended per-group ``max_queued_containers``. Queue limits are not a
    container delta, but they *are* flightable: :meth:`flight_plan` pilots
    a :class:`~repro.flighting.build.YarnLimitsBuild` per changed group (new
    queue bound, running limit untouched), validated on the direct metric —
    capping a queue must visibly change observed queue length.
    """

    name = "queue-tuning"
    mode = "observational"
    requires_engine = False
    primary_metric = "MeanQueueWaitSeconds"  # derived, not a registry metric
    higher_is_better = False
    flight_metrics = ("QueueLength", "QueueWaitP99", "AverageTaskSeconds")
    flight_metric = "QueueLength"

    def __init__(
        self,
        target_wait_seconds: float = 300.0,
        min_limit: int = 1,
        max_limit: int = 64,
    ):
        self.tuner = QueueTuner(
            target_wait_seconds=target_wait_seconds,
            min_limit=min_limit,
            max_limit=max_limit,
        )

    def parameter_space(self) -> tuple[ParameterSpec, ...]:
        return (
            ParameterSpec(
                name="max_queued_containers",
                description="per-group cap on low-priority containers queued "
                "on a machine, equalizing expected drain time",
                kind="int",
                lower=float(self.tuner.min_limit),
                upper=float(self.tuner.max_limit),
                per_group=True,
                unit="containers",
            ),
        )

    def propose(self, observation, engine=None) -> TuningProposal:
        result = self.tuner.tune(observation.monitor)
        proposed = self.tuner.apply_to_config(
            observation.cluster.yarn_config, result
        )
        mean_p99 = float(
            np.mean([stat.p99_wait_seconds for stat in result.stats])
        )
        return TuningProposal(
            application=self.name,
            summary=(
                f"{len(result.recommended_limits)} per-group queue limit(s) "
                f"targeting {result.target_wait_seconds:.0f}s expected drain"
            ),
            proposed_config=proposed,
            config_deltas={},
            baseline_config=observation.cluster.yarn_config.copy(),
            metrics={
                "target_wait_seconds": result.target_wait_seconds,
                "observed_mean_p99_wait_s": mean_p99,
            },
            details=result,
        )

    def flight_plan(self, proposal) -> FlightPlan:
        """Pilot the new queue bound on every group whose limit changes.

        Each entry is a :class:`~repro.flighting.build.YarnLimitsBuild`
        carrying the group's *unchanged* running-container limit plus the
        recommended queue bound, so the pilot isolates the queue knob.
        """
        result: QueueTuningResult = proposal.details
        baseline = proposal.baseline_config
        entries = []
        for key, limit in sorted(result.recommended_limits.items()):
            current = proposal.proposed_config.for_group(key)
            if (
                baseline is not None
                and baseline.for_group(key).max_queued_containers == limit
            ):
                continue  # nothing changes for this group; nothing to pilot
            entries.append(
                PlannedFlight(
                    build=YarnLimitsBuild(
                        max_running_containers=current.max_running_containers,
                        max_queued_containers=limit,
                    ),
                    group=key,
                    name=f"pilot-{key.label}-queue{limit}",
                )
            )
        return FlightPlan(entries=tuple(entries))

    @staticmethod
    def _mean_wait(observation) -> float:
        waits = [
            wait
            for record in observation.monitor.records
            for wait in record.queue.waits
        ]
        return float(np.mean(waits)) if waits else 0.0

    def evaluate(self, before, after) -> TuningOutcome:
        """Observed queueing delay must not grow under the new limits."""
        before_wait = self._mean_wait(before)
        after_wait = self._mean_wait(after)
        return TuningOutcome(
            application=self.name,
            metric=self.primary_metric,
            before=before_wait,
            after=after_wait,
            improved=after_wait <= before_wait,
            detail=(
                f"mean observed queue wait {before_wait:.1f}s → "
                f"{after_wait:.1f}s (lower is better)"
            ),
        )
