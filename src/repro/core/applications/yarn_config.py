"""YARN configuration tuning: the paper's headline application (Section 5.2).

Formulates Eq. 7–10 over the calibrated What-if models:

    maximize    Σ_k n_k · m_k                      (sellable capacity)
    subject to  W̄(m) ≤ W̄'                         (no cluster latency regression)
                |m_k − m'_k| ≤ delta_range          (conservative changes)
                g_k(m_k) ≤ utilization_cap          (physical capacity)

W̄ is the task-weighted cluster average latency. As in the paper's closed
form, the task-count weights are held at their current levels l'_k·n_k, which
makes the constraint affine in m_k (w_k = f_k(g_k(m_k)) is affine); the grid
ablation bench verifies this linearization does not move the optimum.

The LP's solution is a *workload shift* (Figure 10): more containers on fast
groups, fewer on slow groups. The config change then moves each group's
``max_num_running_containers`` one step (±``max_config_step``) in the
suggested direction — the paper's conservative production rollout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.config import YarnConfig
from repro.cluster.software import MachineGroupKey
from repro.core.application import (
    ParameterSpec,
    TuningApplication,
    TuningOutcome,
    TuningProposal,
    register_application,
)
from repro.core.whatif import GroupPrediction, WhatIfEngine
from repro.optim.lp import LinearProgram, LpSolution
from repro.utils.errors import OptimizationError
from repro.utils.tables import TextTable, format_float

__all__ = ["YarnTuningResult", "YarnConfigTuner", "YarnConfigApplication"]


@dataclass
class YarnTuningResult:
    """Everything the YARN tuning run produced."""

    solution: LpSolution
    optimal_containers: dict[str, float]  # m*_k per group label
    current_containers: dict[str, float]  # m'_k per group label
    suggested_shift: dict[str, float]  # m*_k − m'_k (Figure 10)
    config_deltas: dict[MachineGroupKey, int]  # conservative ±step per group
    proposed_config: YarnConfig
    predictions: dict[str, GroupPrediction]  # at m*_k
    baseline_cluster_latency: float  # W̄'
    predicted_cluster_latency: float  # W̄ at the optimum
    baseline_capacity: float  # Σ n_k m'_k
    optimal_capacity: float  # Σ n_k m*_k

    @property
    def capacity_gain(self) -> float:
        """Relative sellable-capacity gain at the LP optimum."""
        if self.baseline_capacity <= 0:
            return 0.0
        return (self.optimal_capacity - self.baseline_capacity) / self.baseline_capacity

    def summary(self) -> str:
        """Paper-style table of the suggested per-group shifts (Figure 10)."""
        table = TextTable(
            ["group", "m' (current)", "m* (optimal)", "shift", "config delta"],
            title="Suggested workload shift per machine group",
        )
        label_by_key = {key.label: key for key in self.config_deltas}
        for group in sorted(self.suggested_shift):
            delta = self.config_deltas.get(label_by_key.get(group), 0)
            table.add_row(
                [
                    group,
                    format_float(self.current_containers[group], 2),
                    format_float(self.optimal_containers[group], 2),
                    f"{self.suggested_shift[group]:+.2f}",
                    f"{delta:+d}",
                ]
            )
        footer = (
            f"\npredicted cluster latency: {self.predicted_cluster_latency:.1f}s "
            f"(baseline {self.baseline_cluster_latency:.1f}s); "
            f"capacity gain at optimum: {self.capacity_gain:+.1%}"
        )
        return table.render() + footer


class YarnConfigTuner:
    """Solves the Eq. 7–10 LP over a calibrated What-if Engine."""

    def __init__(
        self,
        engine: WhatIfEngine,
        delta_range: float = 4.0,
        max_config_step: int = 1,
        utilization_cap: float = 0.95,
        lp_method: str = "simplex",
    ):
        """``delta_range`` bounds the LP's per-group container change;
        ``max_config_step`` bounds the *deployed* config change (the paper's
        ±1-container rollout)."""
        if delta_range <= 0:
            raise OptimizationError("delta_range must be positive")
        if max_config_step < 1:
            raise OptimizationError("max_config_step must be >= 1")
        if not 0.0 < utilization_cap <= 1.0:
            raise OptimizationError("utilization_cap must be in (0, 1]")
        self.engine = engine
        self.delta_range = delta_range
        self.max_config_step = max_config_step
        self.utilization_cap = utilization_cap
        self.lp_method = lp_method

    def tune(self, cluster: Cluster) -> YarnTuningResult:
        """Run the optimization for all calibrated groups present in the cluster."""
        sizes_by_label = {key.label: n for key, n in cluster.group_sizes().items()}
        groups = [g for g in self.engine.groups() if g in sizes_by_label]
        if not groups:
            raise OptimizationError(
                "no calibrated machine group matches the cluster; calibrate first"
            )

        lp = LinearProgram("yarn-max-containers")
        weights: dict[str, float] = {}
        latency_terms: dict[str, tuple[float, float]] = {}
        rhs = 0.0
        for group in groups:
            point = self.engine.operating_point(group)
            n_k = sizes_by_label[group]
            w_slope, w_intercept = self.engine.latency_affine_in_containers(group)
            u_slope, u_intercept = self.engine.utilization_affine_in_containers(group)
            weight = point.tasks_per_hour * n_k  # l'_k · n_k (fixed weights)
            weights[group] = weight
            latency_terms[group] = (w_slope, w_intercept)

            lower = max(1.0, point.containers - self.delta_range)
            upper = point.containers + self.delta_range
            # Physical capacity: g_k(m_k) <= utilization_cap.
            if u_slope > 1e-12:
                upper = min(upper, (self.utilization_cap - u_intercept) / u_slope)
            if upper < lower:
                upper = lower  # group pinned at its lower bound
            lp.add_variable(group, lower=lower, upper=upper, objective=float(n_k))

        # Σ_k weight_k · (w_slope_k · m_k + w_intercept_k) <= Σ_k weight_k · w'_k
        coeffs = {
            group: weights[group] * latency_terms[group][0] for group in groups
        }
        for group in groups:
            point = self.engine.operating_point(group)
            rhs += weights[group] * (point.task_latency - latency_terms[group][1])
        lp.add_constraint("cluster-average-latency", coeffs, "<=", rhs)

        solution = lp.solve(method=self.lp_method)
        if not solution.is_optimal:
            raise OptimizationError(
                f"YARN tuning LP did not solve to optimality: {solution.status}"
            )
        return self._assemble(cluster, groups, sizes_by_label, weights, solution)

    def _assemble(
        self,
        cluster: Cluster,
        groups: list[str],
        sizes_by_label: dict[str, int],
        weights: dict[str, float],
        solution: LpSolution,
    ) -> YarnTuningResult:
        optimal = {g: solution[g] for g in groups}
        current = {g: self.engine.operating_point(g).containers for g in groups}
        shift = {g: optimal[g] - current[g] for g in groups}
        predictions = {g: self.engine.predict(g, optimal[g]) for g in groups}

        # Conservative config deltas: one step in the suggested direction,
        # only for groups whose shift is material (>= half a container).
        deltas: dict[MachineGroupKey, int] = {}
        for group in groups:
            key = MachineGroupKey.from_label(group)
            magnitude = min(self.max_config_step, int(round(abs(shift[group]))))
            if abs(shift[group]) < 0.5 or magnitude == 0:
                continue
            deltas[key] = magnitude if shift[group] > 0 else -magnitude
        proposed = cluster.yarn_config.with_container_delta(deltas)

        total_weight = sum(weights.values())
        baseline_latency = (
            sum(
                weights[g] * self.engine.operating_point(g).task_latency
                for g in groups
            )
            / total_weight
        )
        predicted_latency = (
            sum(weights[g] * predictions[g].task_latency for g in groups)
            / total_weight
        )
        baseline_capacity = sum(sizes_by_label[g] * current[g] for g in groups)
        optimal_capacity = sum(sizes_by_label[g] * optimal[g] for g in groups)

        return YarnTuningResult(
            solution=solution,
            optimal_containers=optimal,
            current_containers=current,
            suggested_shift=shift,
            config_deltas=deltas,
            proposed_config=proposed,
            predictions=predictions,
            baseline_cluster_latency=baseline_latency,
            predicted_cluster_latency=predicted_latency,
            baseline_capacity=baseline_capacity,
            optimal_capacity=optimal_capacity,
        )


@register_application
class YarnConfigApplication(TuningApplication):
    """The headline application behind the unified lifecycle (Section 5.2).

    ``propose`` solves the Eq. 7–10 LP over the supplied calibrated engine;
    the full :class:`YarnTuningResult` rides along as
    ``TuningProposal.details`` and the conservative per-group deltas become
    the flight plan (the inherited default: one
    :class:`~repro.flighting.build.ContainerDeltaBuild` pilot per group,
    validated on observed running containers).
    """

    name = "yarn-config"
    mode = "observational"
    requires_engine = True
    primary_metric = "TotalDataRead"
    higher_is_better = True

    #: Maximum tolerated relative latency increase at evaluation time (the
    #: Level II implicit-SLO surrogate used across the deployment machinery).
    latency_allowance = 0.02

    def __init__(self, **tuner_kwargs):
        self.tuner_kwargs = tuner_kwargs

    def parameter_space(self) -> tuple[ParameterSpec, ...]:
        return (
            ParameterSpec(
                name="max_num_running_containers",
                description="per-group YARN cap on concurrently running "
                "containers (Eq. 7-10 decision variable)",
                kind="int",
                lower=1,
                per_group=True,
                unit="containers",
            ),
        )

    def propose(self, observation, engine=None) -> TuningProposal:
        engine = self.require_engine(engine)
        result = YarnConfigTuner(engine, **self.tuner_kwargs).tune(
            observation.cluster
        )
        return TuningProposal(
            application=self.name,
            summary=(
                f"{len(result.config_deltas)} group delta(s), predicted "
                f"capacity {result.capacity_gain:+.1%} at the optimum"
            ),
            proposed_config=result.proposed_config,
            config_deltas=dict(result.config_deltas),
            baseline_config=observation.cluster.yarn_config.copy(),
            metrics={
                "predicted_capacity_gain": result.capacity_gain,
                "predicted_cluster_latency_s": result.predicted_cluster_latency,
                "baseline_cluster_latency_s": result.baseline_cluster_latency,
            },
            details=result,
        )

    def evaluate(self, before, after) -> TuningOutcome:
        """Throughput must rise without a material latency regression."""
        base = super().evaluate(before, after)
        latency_before = float(before.monitor.metric("AverageTaskSeconds").mean())
        latency_after = float(after.monitor.metric("AverageTaskSeconds").mean())
        latency_change = (
            (latency_after - latency_before) / abs(latency_before)
            if latency_before
            else 0.0
        )
        improved = base.improved and latency_change <= self.latency_allowance
        return TuningOutcome(
            application=self.name,
            metric=self.primary_metric,
            before=base.before,
            after=base.after,
            improved=improved,
            detail=(
                f"{base.detail}; task latency {latency_change:+.1%} "
                f"(allowance {self.latency_allowance:+.1%})"
            ),
        )
