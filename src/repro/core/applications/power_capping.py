"""Power capping — experimental tuning (Section 7.2, Figure 15).

Runs the four-group (A/B/C/D) experiment at several capping levels and
summarizes the performance impact on the normalized metrics Bytes per CPU
Time and Bytes per Second, benchmarked against Group A (no cap, Feature off).
The recommendation is the deepest capping level whose impact (with the
Feature enabled) stays above a tolerance — capping below provisioned power
frees power to rack more machines (≈10 MW in the paper).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster, build_cluster
from repro.cluster.simulator import ClusterSimulator
from repro.core.application import (
    ParameterSpec,
    TuningApplication,
    TuningProposal,
    register_application,
)
from repro.experiment.power_capping import (
    PowerCappingOutcome,
    analyze_power_capping,
    apply_power_capping_groups,
    assign_power_capping_groups,
    revert_power_capping_groups,
)
from repro.flighting.build import (
    CompositeBuild,
    FeatureBuild,
    FlightPlan,
    PlannedFlight,
    PowerCapBuild,
)
from repro.telemetry.monitor import PerformanceMonitor
from repro.utils.errors import ExperimentError
from repro.utils.rng import RngStreams
from repro.utils.tables import TextTable
from repro.workload.generator import WorkloadGenerator, estimate_jobs_per_hour
from repro.workload.seasonality import FLAT_PROFILE

__all__ = ["PowerCappingStudy", "PowerCappingStudyResult", "PowerCappingApplication"]


@dataclass
class PowerCappingStudyResult:
    """Outcomes for every capping level (the data behind Figure 15)."""

    sku: str
    levels: list[float]
    outcomes: list[PowerCappingOutcome] = field(default_factory=list)

    def impact(self, metric: str, level: float, group: str) -> float:
        """Relative impact vs Group A for (metric, capping level, group)."""
        for outcome in self.outcomes:
            if outcome.metric == metric and abs(outcome.capping_level - level) < 1e-9:
                return outcome.impact_by_group[group]
        raise KeyError(f"no outcome for metric={metric!r} level={level}")

    def recommend_level(
        self, metric: str = "BytesPerCpuTime", tolerance: float = 0.0
    ) -> float:
        """Deepest level whose Feature-enabled impact stays above −tolerance."""
        best = 0.0
        for level in sorted(self.levels):
            if self.impact(metric, level, "D") >= -tolerance:
                best = level
        return best

    def summary(self) -> str:
        """Figure 15 as a text table (impact % vs Group A)."""
        lines = []
        for metric in sorted({o.metric for o in self.outcomes}):
            table = TextTable(
                ["capping level", "Feature + Capping (D)", "Capping only (C)",
                 "Feature only (B)"],
                title=f"{metric} impact vs baseline (Group A)",
            )
            for level in self.levels:
                table.add_row(
                    [
                        f"{level:.0%}",
                        f"{self.impact(metric, level, 'D'):+.1%}",
                        f"{self.impact(metric, level, 'C'):+.1%}",
                        f"{self.impact(metric, level, 'B'):+.1%}",
                    ]
                )
            lines.append(table.render())
        return "\n\n".join(lines)


class PowerCappingStudy:
    """Orchestrates one simulated experiment round per capping level.

    Each round gets a fresh cluster/simulator from the supplied factories so
    rounds are independent (the paper ran rounds sequentially in time; the
    hybrid setting's normalized metrics make them comparable).
    """

    def __init__(
        self,
        cluster_factory: Callable[[], Cluster],
        simulator_factory: Callable[[Cluster], ClusterSimulator],
        sku: str = "Gen 4.1",
        group_size: int = 30,
    ):
        self.cluster_factory = cluster_factory
        self.simulator_factory = simulator_factory
        self.sku = sku
        self.group_size = group_size

    def run(
        self,
        capping_levels: list[float],
        hours_per_round: float = 24.0,
        metrics: tuple[str, ...] = ("BytesPerCpuTime", "BytesPerSecond"),
    ) -> PowerCappingStudyResult:
        """Run all rounds and collect Figure 15's series."""
        if not capping_levels:
            raise ExperimentError("need at least one capping level")
        result = PowerCappingStudyResult(sku=self.sku, levels=list(capping_levels))
        for level in capping_levels:
            cluster = self.cluster_factory()
            assignment = assign_power_capping_groups(
                cluster, sku=self.sku, group_size=self.group_size,
                capping_level=level,
            )
            builds = apply_power_capping_groups(cluster, assignment)
            simulator = self.simulator_factory(cluster)
            sim_result = simulator.run(hours_per_round)
            monitor = PerformanceMonitor(sim_result.frame)
            result.outcomes.extend(
                analyze_power_capping(monitor, assignment, metrics=metrics)
            )
            revert_power_capping_groups(cluster, builds)
        return result


@register_application
class PowerCappingApplication(TuningApplication):
    """Power capping through the unified lifecycle (Section 7.2).

    Experimental: ``propose`` runs one four-group experiment round per
    capping level against fresh clusters built from the bound host
    environment, then recommends the deepest level whose Feature-enabled
    impact stays within tolerance. The output is a *decision* (a capping
    level worth ~MW of rackable power), not a YARN config, so the proposal
    is advisory — but a nonzero recommendation is still pilot-flighted:
    :meth:`flight_plan` deploys the Group-D build (Feature on + chassis cap)
    to whole chassis of the studied SKU, confirming the cap visibly bounds
    power draw before the fleet-wide rollout decision ships.
    """

    name = "power-capping"
    mode = "experimental"
    requires_engine = False
    primary_metric = "BytesPerCpuTime"
    higher_is_better = True
    flight_metrics = ("PowerWatts", "BytesPerCpuTime")
    flight_metric = "PowerWatts"

    def __init__(
        self,
        sku: str = "Gen 4.1",
        capping_levels: tuple[float, ...] = (0.10, 0.20, 0.30),
        group_size: int = 8,
        hours_per_round: float = 8.0,
        occupancy: float = 1.0,
        tolerance: float = 0.0,
        seed: int = 9001,
    ):
        if not capping_levels:
            raise ExperimentError("need at least one capping level")
        self.sku = sku
        self.capping_levels = tuple(capping_levels)
        self.group_size = group_size
        self.hours_per_round = hours_per_round
        self.occupancy = occupancy
        self.tolerance = tolerance
        self.seed = seed

    def parameter_space(self) -> tuple[ParameterSpec, ...]:
        return (
            ParameterSpec(
                name="capping_level",
                description="fraction below provisioned power the chassis "
                "cap is set to (deepest net-neutral level wins)",
                kind="choice",
                choices=self.capping_levels,
                unit="fraction of provisioned power",
            ),
        )

    def _simulator_factory(self):
        """Deterministic demand-bound simulators, one seed stream per round.

        Rounds run in the ``occupancy``≈1 regime the paper's experiment used
        (capping only shows when the throttle actually engages).
        """
        host = self.host
        counter = iter(range(10_000))

        def factory(cluster: Cluster) -> ClusterSimulator:
            round_seed = self.seed + next(counter)
            rate = estimate_jobs_per_hour(
                cluster.total_container_slots,
                self.occupancy,
                host.templates,
                mean_task_duration_s=420.0,
            )
            workload = WorkloadGenerator(
                host.templates,
                jobs_per_hour=rate,
                seasonality=FLAT_PROFILE,
                streams=RngStreams(round_seed),
            ).generate(self.hours_per_round)
            return ClusterSimulator(
                cluster, workload, streams=RngStreams(round_seed + 1)
            )

        return factory

    def propose(self, observation, engine=None) -> TuningProposal:
        host = self.host
        study = PowerCappingStudy(
            cluster_factory=lambda: build_cluster(
                host.fleet_spec, host.current_config.copy()
            ),
            simulator_factory=self._simulator_factory(),
            sku=self.sku,
            group_size=self.group_size,
        )
        result = study.run(
            capping_levels=list(self.capping_levels),
            hours_per_round=self.hours_per_round,
        )
        recommended = result.recommend_level(
            metric=self.primary_metric, tolerance=self.tolerance
        )
        feature_impact = (
            result.impact(self.primary_metric, recommended, "D")
            if recommended > 0
            else 0.0
        )
        return TuningProposal(
            application=self.name,
            summary=(
                f"recommend capping {self.sku} at {recommended:.0%} below "
                f"provision (Feature-enabled impact {feature_impact:+.1%} "
                f"on {self.primary_metric})"
            ),
            proposed_config=None,
            config_deltas={},
            metrics={
                "recommended_capping_level": recommended,
                "feature_enabled_impact": feature_impact,
            },
            details=result,
        )

    def flight_plan(self, proposal) -> FlightPlan:
        """Pilot the recommended Group-D build (Feature + cap) when nonzero.

        Chassis-aligned: the cap is chassis-wide, so a pilot cutting through
        a chassis would cap its own control machines.
        """
        recommended = proposal.metrics.get("recommended_capping_level", 0.0)
        if recommended <= 0:
            return FlightPlan()
        return FlightPlan(
            entries=(
                PlannedFlight(
                    build=CompositeBuild(
                        builds=(
                            FeatureBuild(enabled=True),
                            PowerCapBuild(capping_level=recommended),
                        )
                    ),
                    sku=self.sku,
                    name=f"pilot-powercap-{self.sku}-{recommended:.0%}",
                    chassis_aligned=True,
                ),
            )
        )
