"""KEA applications (Table 3): one module per production tuning scenario."""

from repro.core.applications.power_capping import (
    PowerCappingStudy,
    PowerCappingStudyResult,
)
from repro.core.applications.queue_tuning import (
    QueueGroupStats,
    QueueTuner,
    QueueTuningResult,
)
from repro.core.applications.sc_selection import (
    ScSelectionExperiment,
    ScSelectionResult,
)
from repro.core.applications.sku_design import (
    SkuCostModel,
    SkuDesignResult,
    SkuDesignStudy,
    UsageModel,
)
from repro.core.applications.yarn_config import YarnConfigTuner, YarnTuningResult

__all__ = [
    "PowerCappingStudy",
    "PowerCappingStudyResult",
    "QueueGroupStats",
    "QueueTuner",
    "QueueTuningResult",
    "ScSelectionExperiment",
    "ScSelectionResult",
    "SkuCostModel",
    "SkuDesignResult",
    "SkuDesignStudy",
    "UsageModel",
    "YarnConfigTuner",
    "YarnTuningResult",
]
