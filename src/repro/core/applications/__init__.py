"""KEA applications (Table 3): one module per production tuning scenario.

Importing this package registers all five applications in the shared
:data:`repro.core.application.APPLICATIONS` registry, so every consumer of
the unified :class:`~repro.core.application.TuningApplication` lifecycle
(the :class:`~repro.core.kea.Kea` facade, the continuous tuning service)
sees the full catalog.
"""

from repro.core.applications.power_capping import (
    PowerCappingApplication,
    PowerCappingStudy,
    PowerCappingStudyResult,
)
from repro.core.applications.queue_tuning import (
    QueueGroupStats,
    QueueTuner,
    QueueTuningApplication,
    QueueTuningResult,
)
from repro.core.applications.sc_selection import (
    ScSelectionApplication,
    ScSelectionExperiment,
    ScSelectionResult,
)
from repro.core.applications.sku_design import (
    SkuCostModel,
    SkuDesignApplication,
    SkuDesignResult,
    SkuDesignStudy,
    UsageModel,
)
from repro.core.applications.yarn_config import (
    YarnConfigApplication,
    YarnConfigTuner,
    YarnTuningResult,
)

__all__ = [
    "PowerCappingApplication",
    "PowerCappingStudy",
    "PowerCappingStudyResult",
    "QueueGroupStats",
    "QueueTuner",
    "QueueTuningApplication",
    "QueueTuningResult",
    "ScSelectionApplication",
    "ScSelectionExperiment",
    "ScSelectionResult",
    "SkuCostModel",
    "SkuDesignApplication",
    "SkuDesignResult",
    "SkuDesignStudy",
    "UsageModel",
    "YarnConfigApplication",
    "YarnConfigTuner",
    "YarnTuningResult",
]
