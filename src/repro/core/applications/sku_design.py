"""Machine (SKU) configuration design — hypothetical tuning (Section 6.1).

Decides how much SSD and RAM to buy for a future machine generation whose
CPU core count is already fixed (128 cores in the paper). Two steps:

1. **Projection models** (Eq. 11–12): fit ``s = p(c) = α_s + β_s·c`` and
   ``r = q(c) = α_r + β_r·c`` on fine-grained (cores-in-use, SSD, RAM)
   observations, and extract the *empirical distribution* of per-core slopes
   so the Monte Carlo can capture workload variance.
2. **Monte-Carlo cost** (Figure 14): for a candidate (SSD S, RAM R) design,
   repeatedly draw slopes, compute the usable cores
   ``c = min(128, p⁻¹(S), q⁻¹(R))``, and price idle cores/SSD/RAM plus a
   stranding penalty when the design runs out of SSD or RAM ("Running out of
   CPU is handled more gracefully ... than running out of RAM or SSD").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.simulator import ObservationSpec
from repro.core.application import (
    ParameterSpec,
    TuningApplication,
    TuningProposal,
    register_application,
)
from repro.ml.linear import LinearRegression
from repro.optim.grid import GridSearchResult, grid_search
from repro.optim.montecarlo import MonteCarloResult, estimate_expected_value
from repro.telemetry.records import ResourceSample
from repro.utils.errors import TelemetryError

__all__ = [
    "UsageModel",
    "SkuCostModel",
    "SkuDesignStudy",
    "SkuDesignResult",
    "SkuDesignApplication",
]


@dataclass
class UsageModel:
    """Calibrated resource-usage projections with slope distributions."""

    ssd_model: LinearRegression
    ram_model: LinearRegression
    ssd_slopes: np.ndarray  # empirical β_s draws
    ram_slopes: np.ndarray  # empirical β_r draws
    n_samples: int

    @property
    def alpha_ssd(self) -> float:
        """SSD usage at zero cores (GB)."""
        return self.ssd_model.intercept

    @property
    def alpha_ram(self) -> float:
        """RAM usage at zero cores (GB)."""
        return self.ram_model.intercept


@dataclass(frozen=True, slots=True)
class SkuCostModel:
    """Unit prices and stranding penalties (normalized currency units).

    ``oos_penalty``/``oom_penalty`` price the operational pain of a machine
    stranded by SSD/RAM exhaustion; they dominate under-provisioned designs,
    producing the steep left wall of the Figure 14 cost surface.
    """

    core_unit_cost: float = 40.0
    ram_unit_cost_per_gb: float = 3.0
    ssd_unit_cost_per_gb: float = 0.12
    oos_penalty: float = 2500.0
    oom_penalty: float = 2500.0
    stranding_threshold: float = 1e-9


@dataclass
class SkuDesignResult:
    """The swept cost surface and its sweet spot."""

    grid: GridSearchResult
    best_ram_gb: float
    best_ssd_gb: float
    best_cost: float
    n_cores: int

    def surface_rows(self) -> list[tuple[float, float, float]]:
        """(ram_gb, ssd_gb, expected_cost) triples of the surface (Figure 14)."""
        return [
            (cell.point["ram_gb"], cell.point["ssd_gb"], cell.value)
            for cell in self.grid.evaluations
        ]


class SkuDesignStudy:
    """Calibrate usage models and sweep candidate (RAM, SSD) designs."""

    def __init__(self, cost_model: SkuCostModel | None = None,
                 min_cores_for_slope: float = 2.0):
        self.cost_model = cost_model if cost_model is not None else SkuCostModel()
        self.min_cores_for_slope = min_cores_for_slope
        self.usage: UsageModel | None = None

    # ------------------------------------------------------------------
    # Step 1: projection models (Figure 13)
    # ------------------------------------------------------------------
    def fit_usage(self, samples: list[ResourceSample]) -> UsageModel:
        """Fit p(c), q(c) and slope distributions from resource samples."""
        if len(samples) < 10:
            raise TelemetryError(
                f"need at least 10 resource samples to fit usage models, "
                f"got {len(samples)}"
            )
        cores = np.array([s.cores_in_use for s in samples])
        ssd = np.array([s.ssd_gb_in_use for s in samples])
        ram = np.array([s.ram_gb_in_use for s in samples])

        ssd_model = LinearRegression().fit(cores, ssd)
        ram_model = LinearRegression().fit(cores, ram)

        # Per-observation slopes: β_i = (usage_i − α) / cores_i, over
        # observations with enough cores in use for the ratio to be stable.
        mask = cores >= self.min_cores_for_slope
        if not mask.any():
            raise TelemetryError(
                "no resource sample has enough cores in use to estimate slopes"
            )
        ssd_slopes = (ssd[mask] - ssd_model.intercept) / cores[mask]
        ram_slopes = (ram[mask] - ram_model.intercept) / cores[mask]
        ssd_slopes = np.maximum(ssd_slopes, 0.0)
        ram_slopes = np.maximum(ram_slopes, 0.0)

        self.usage = UsageModel(
            ssd_model=ssd_model,
            ram_model=ram_model,
            ssd_slopes=ssd_slopes,
            ram_slopes=ram_slopes,
            n_samples=len(samples),
        )
        return self.usage

    # ------------------------------------------------------------------
    # Step 2: Monte-Carlo expected cost (Figure 14)
    # ------------------------------------------------------------------
    def expected_cost(
        self,
        ram_gb: float,
        ssd_gb: float,
        n_cores: int = 128,
        n_draws: int = 1000,
        rng: np.random.Generator | None = None,
    ) -> MonteCarloResult:
        """Expected cost of a (RAM, SSD) design for an ``n_cores`` machine."""
        usage = self._require_usage()
        cost = self.cost_model
        alpha_s, alpha_r = usage.alpha_ssd, usage.alpha_ram
        ssd_slopes, ram_slopes = usage.ssd_slopes, usage.ram_slopes
        n_slopes = ssd_slopes.size

        def draw(gen: np.random.Generator) -> float:
            index = int(gen.integers(0, n_slopes))
            beta_s = max(float(ssd_slopes[index]), 1e-6)
            beta_r = max(float(ram_slopes[index]), 1e-6)
            # c = min(128, p^{-1}(S), q^{-1}(R))
            c_ssd = (ssd_gb - alpha_s) / beta_s
            c_ram = (ram_gb - alpha_r) / beta_r
            c = min(float(n_cores), c_ssd, c_ram)
            c = max(c, 0.0)
            idle_cores = n_cores - c
            idle_ssd = ssd_gb - (alpha_s + beta_s * c)
            idle_ram = ram_gb - (alpha_r + beta_r * c)
            total = (
                cost.core_unit_cost * idle_cores
                + cost.ssd_unit_cost_per_gb * max(idle_ssd, 0.0)
                + cost.ram_unit_cost_per_gb * max(idle_ram, 0.0)
            )
            if idle_ssd <= cost.stranding_threshold:
                total += cost.oos_penalty
            if idle_ram <= cost.stranding_threshold:
                total += cost.oom_penalty
            return total

        return estimate_expected_value(draw, n_draws=n_draws, rng=rng)

    def sweep(
        self,
        ram_candidates_gb: list[float],
        ssd_candidates_gb: list[float],
        n_cores: int = 128,
        n_draws: int = 400,
        seed: int = 0,
    ) -> SkuDesignResult:
        """Sweep the design grid and locate the cost sweet spot."""
        self._require_usage()
        rng = np.random.default_rng(seed)

        def objective(point: dict[str, float]) -> float:
            return self.expected_cost(
                ram_gb=point["ram_gb"],
                ssd_gb=point["ssd_gb"],
                n_cores=n_cores,
                n_draws=n_draws,
                rng=rng,
            ).mean

        grid = grid_search(
            objective,
            axes={"ram_gb": ram_candidates_gb, "ssd_gb": ssd_candidates_gb},
            minimize=True,
        )
        return SkuDesignResult(
            grid=grid,
            best_ram_gb=grid.best.point["ram_gb"],
            best_ssd_gb=grid.best.point["ssd_gb"],
            best_cost=grid.best.value,
            n_cores=n_cores,
        )

    def _require_usage(self) -> UsageModel:
        if self.usage is None:
            raise TelemetryError("fit_usage() must run before cost estimation")
        return self.usage


@register_application
class SkuDesignApplication(TuningApplication):
    """SKU (RAM, SSD) purchase planning through the unified lifecycle (§6.1).

    Hypothetical: the proposal configures machines that do not exist yet, so
    it is advisory — no flight plan, no deployable config. The observation
    window must carry fine-grained resource samples, declared through
    :meth:`observation_spec`: ``Kea.tune``/``run_application`` collect them
    directly, and campaigns attach the spec to their observe
    :class:`~repro.service.pool.SimulationRequest` so the samples fan out
    through the simulation pool and memoize in the cache like every other
    window. A sample-free observation is a caller error (there is no hidden
    re-observation fallback).
    """

    name = "sku-design"
    mode = "hypothetical"
    requires_engine = False
    primary_metric = "BytesPerCpuTime"
    higher_is_better = True

    def __init__(
        self,
        n_cores: int = 128,
        ram_candidates_gb: list[float] | None = None,
        ssd_candidates_gb: list[float] | None = None,
        sample_sku: str = "Gen 4.1",
        sample_period_s: float = 120.0,
        sample_machines: int = 12,
        cost_model: SkuCostModel | None = None,
        n_draws: int = 400,
    ):
        self.n_cores = n_cores
        self.ram_candidates_gb = (
            ram_candidates_gb
            if ram_candidates_gb is not None
            else [float(x) for x in range(64, 513, 64)]
        )
        self.ssd_candidates_gb = (
            ssd_candidates_gb
            if ssd_candidates_gb is not None
            else [float(x) for x in range(500, 6001, 500)]
        )
        self.sample_sku = sample_sku
        self.sample_period_s = sample_period_s
        self.sample_machines = sample_machines
        self.cost_model = cost_model
        self.n_draws = n_draws

    def parameter_space(self) -> tuple[ParameterSpec, ...]:
        return (
            ParameterSpec(
                name="ram_gb",
                description="RAM to buy per future machine (Eq. 12 projection)",
                kind="choice",
                choices=tuple(self.ram_candidates_gb),
                unit="GB",
            ),
            ParameterSpec(
                name="ssd_gb",
                description="SSD to buy per future machine (Eq. 11 projection)",
                kind="choice",
                choices=tuple(self.ssd_candidates_gb),
                unit="GB",
            ),
        )

    def observation_spec(self) -> ObservationSpec:
        return ObservationSpec(
            resource_sample_period_s=self.sample_period_s,
            resource_sample_machines=self.sample_machines,
            resource_sample_sku=self.sample_sku,
        )

    def _resource_samples(self, observation) -> list[ResourceSample]:
        result = getattr(observation, "result", None)
        samples = getattr(result, "resource_samples", None) or []
        if not samples:
            raise TelemetryError(
                "sku-design needs an observation with resource samples; "
                "collect it with this application's observation_spec() "
                "(Kea.tune/run_application do, and campaign observe requests "
                "carry the spec through the simulation pool)"
            )
        return samples

    def propose(self, observation, engine=None) -> TuningProposal:
        study = SkuDesignStudy(cost_model=self.cost_model)
        usage = study.fit_usage(self._resource_samples(observation))
        design = study.sweep(
            ram_candidates_gb=self.ram_candidates_gb,
            ssd_candidates_gb=self.ssd_candidates_gb,
            n_cores=self.n_cores,
            n_draws=self.n_draws,
        )
        return TuningProposal(
            application=self.name,
            summary=(
                f"sweet spot for a {self.n_cores}-core machine: "
                f"{design.best_ram_gb:.0f} GB RAM, {design.best_ssd_gb:.0f} GB "
                f"SSD (expected cost {design.best_cost:.0f}, fitted on "
                f"{usage.n_samples} samples)"
            ),
            proposed_config=None,
            config_deltas={},
            metrics={
                "best_ram_gb": design.best_ram_gb,
                "best_ssd_gb": design.best_ssd_gb,
                "best_expected_cost": design.best_cost,
            },
            details=design,
        )
