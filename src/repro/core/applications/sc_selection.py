"""Software-configuration selection — experimental tuning (Section 7.1, Table 4).

Compares SC1 (local temp store on HDD) against SC2 (temp store on SSD) in the
*ideal* experiment setting: two rows of racks, every other machine in each
rack flipped to SC2, run over consecutive workdays, then Student's t-tests on
Total Data Read and Average Task Execution Time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster, build_cluster
from repro.cluster.simulator import ClusterSimulator
from repro.core.application import (
    ParameterSpec,
    TuningApplication,
    TuningProposal,
    register_application,
)
from repro.experiment.ab import ABReport, compare_groups
from repro.experiment.design import GroupAssignment, ideal_setting
from repro.flighting.build import FlightPlan, PlannedFlight, SoftwareBuild
from repro.telemetry.monitor import PerformanceMonitor
from repro.utils.errors import ExperimentError
from repro.utils.rng import RngStreams
from repro.utils.tables import TextTable
from repro.utils.units import bytes_to_pb
from repro.workload.generator import WorkloadGenerator, estimate_jobs_per_hour

__all__ = ["ScSelectionExperiment", "ScSelectionResult", "ScSelectionApplication"]


@dataclass
class ScSelectionResult:
    """The Table 4 comparison plus the winner call."""

    report: ABReport
    assignment: GroupAssignment
    n_days: float

    def winner(self) -> str:
        """'SC2' when the experiment arm dominates, 'SC1' when control does,
        'tie' otherwise."""
        throughput = self.report.winner("TotalDataRead", higher_is_better=True)
        latency = self.report.winner("AverageTaskSeconds", higher_is_better=False)
        if throughput == "experiment" and latency in ("experiment", "tie"):
            return "SC2"
        if throughput == "control" and latency in ("control", "tie"):
            return "SC1"
        if latency == "experiment" and throughput == "tie":
            return "SC2"
        if latency == "control" and throughput == "tie":
            return "SC1"
        return "tie"

    def summary(self) -> str:
        """Render the Table 4 layout (SC1, SC2, % change, t-value)."""
        data_read = self.report.comparison("TotalDataRead")
        task_time = self.report.comparison("AverageTaskSeconds")
        table = TextTable(
            ["Name", "SC1", "SC2", "% Changes", "t-value"],
            title="Performance metrics for different software configurations",
        )
        # Total Data Read reported as PB per machine-day scaled to the arm.
        scale = len(self.assignment.experiment) * max(self.n_days, 1.0)
        table.add_row(
            [
                "Total Data Read (PB)",
                f"{bytes_to_pb(data_read.control_mean * scale):.3f}",
                f"{bytes_to_pb(data_read.experiment_mean * scale):.3f}",
                f"{data_read.pct_change:+.1%}",
                f"{data_read.test.t_value:.1f}",
            ]
        )
        table.add_row(
            [
                "Average Task Execution Time (s)",
                f"{task_time.control_mean:.1f}",
                f"{task_time.experiment_mean:.1f}",
                f"{task_time.pct_change:+.1%}",
                f"{task_time.test.t_value:.1f}",
            ]
        )
        return table.render()


class ScSelectionExperiment:
    """Run the ideal-setting SC1 vs SC2 experiment on a cluster."""

    def __init__(self, cluster: Cluster, sku: str | None = None):
        """``sku`` restricts candidate racks; default picks the largest SC1 SKU."""
        self.cluster = cluster
        self.sku = sku

    def select_racks(self, n_racks: int) -> list[int]:
        """Pick ``n_racks`` homogeneous SC1 racks (two "rows" in the paper)."""
        candidates: list[int] = []
        for rack in self.cluster.racks():
            machines = self.cluster.machines_in_rack(rack)
            groups = {(m.sku.name, m.software.name) for m in machines}
            if len(groups) != 1:
                continue
            sku_name, sc_name = next(iter(groups))
            if sc_name != "SC1":
                continue
            if self.sku is not None and sku_name != self.sku:
                continue
            candidates.append(rack)
        if len(candidates) < n_racks:
            raise ExperimentError(
                f"only {len(candidates)} homogeneous SC1 racks available, "
                f"need {n_racks}"
            )
        return candidates[:n_racks]

    def prepare(self, n_racks: int = 4) -> GroupAssignment:
        """Split the selected racks into interleaved control/experiment arms
        and flip the experiment arm to SC2."""
        racks = self.select_racks(n_racks)
        assignment = ideal_setting(self.cluster, racks)
        build = SoftwareBuild(software_name="SC2")
        build.apply(self.cluster, assignment.experiment)
        return assignment

    def analyze(
        self,
        simulator_result_records,
        assignment: GroupAssignment,
        n_days: float,
    ) -> ScSelectionResult:
        """Produce the Table 4 report from collected telemetry."""
        monitor = PerformanceMonitor(simulator_result_records)
        report = compare_groups(
            name="SC1-vs-SC2",
            monitor=monitor,
            assignment=assignment,
            metrics=("TotalDataRead", "AverageTaskSeconds", "BytesPerSecond"),
        )
        return ScSelectionResult(report=report, assignment=assignment, n_days=n_days)

    def run(
        self,
        simulator: ClusterSimulator,
        days: float = 5.0,
        n_racks: int = 4,
    ) -> ScSelectionResult:
        """Prepare arms, simulate ``days`` workdays, and analyze."""
        assignment = self.prepare(n_racks=n_racks)
        result = simulator.run(days * 24.0)
        return self.analyze(result.frame, assignment, n_days=days)


@register_application
class ScSelectionApplication(TuningApplication):
    """SC1-vs-SC2 selection through the unified lifecycle (Section 7.1).

    Experimental and advisory: ``propose`` runs the ideal-setting A/B on a
    fresh cluster built from the bound host environment and reports the
    winning software configuration. There is no deployable YARN config — the
    decision and the full Table 4 report ride in ``details`` — but the
    decision *is* flightable: when the challenger (SC2) wins,
    :meth:`flight_plan` pilots a
    :class:`~repro.flighting.build.SoftwareBuild` re-image on a slice of the
    incumbent population, the production safety check before any rack-scale
    rollout.
    """

    name = "sc-selection"
    mode = "experimental"
    requires_engine = False
    primary_metric = "BytesPerSecond"
    higher_is_better = True
    flight_metrics = ("BytesPerSecond", "AverageTaskSeconds")
    flight_metric = "BytesPerSecond"

    def __init__(
        self,
        sku: str | None = None,
        n_racks: int = 2,
        days: float = 1.0,
        occupancy: float = 0.7,
        seed: int = 4242,
    ):
        self.sku = sku
        self.n_racks = n_racks
        self.days = days
        self.occupancy = occupancy
        self.seed = seed

    def parameter_space(self) -> tuple[ParameterSpec, ...]:
        return (
            ParameterSpec(
                name="software_configuration",
                description="local temp store placement: SC1 keeps it on "
                "HDD, SC2 moves it to SSD",
                kind="choice",
                choices=("SC1", "SC2"),
                per_group=True,
            ),
        )

    def propose(self, observation, engine=None) -> TuningProposal:
        host = self.host
        cluster = build_cluster(host.fleet_spec, host.current_config.copy())
        experiment = ScSelectionExperiment(cluster, sku=self.sku)
        rate = estimate_jobs_per_hour(
            cluster.total_container_slots,
            self.occupancy,
            host.templates,
            mean_task_duration_s=420.0,
        )
        workload = WorkloadGenerator(
            host.templates,
            jobs_per_hour=rate,
            streams=RngStreams(self.seed),
        ).generate(self.days * 24.0)
        simulator = ClusterSimulator(
            cluster, workload, streams=RngStreams(self.seed + 1)
        )
        result = experiment.run(simulator, days=self.days, n_racks=self.n_racks)
        data_read = result.report.comparison("TotalDataRead")
        return TuningProposal(
            application=self.name,
            summary=(
                f"ideal-setting A/B over {self.n_racks} rack(s): winner "
                f"{result.winner()} (Total Data Read "
                f"{data_read.pct_change:+.1%}, t={data_read.test.t_value:.1f})"
            ),
            proposed_config=None,
            config_deltas={},
            metrics={
                "total_data_read_pct_change": data_read.pct_change,
                "t_value": data_read.test.t_value,
            },
            details=result,
        )

    def flight_plan(self, proposal) -> FlightPlan:
        """Pilot the winning re-image on the incumbent (SC1) population.

        Only a challenger win plans a flight: an SC1 win or a tie keeps the
        fleet as it is, so there is nothing to deploy — and nothing to
        pilot.
        """
        result: ScSelectionResult = proposal.details
        if result.winner() != "SC2":
            return FlightPlan()
        label = self.sku if self.sku is not None else "fleet"
        return FlightPlan(
            entries=(
                PlannedFlight(
                    build=SoftwareBuild(software_name="SC2"),
                    sku=self.sku,
                    software="SC1",
                    name=f"pilot-SC2-{label}",
                ),
            )
        )
