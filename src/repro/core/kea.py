"""The KEA facade: one object wiring all modules of Figure 7.

:class:`Kea` owns the simulated "production" environment (fleet spec, current
YARN config, workload mix) and exposes the architecture's modules as methods:

* Performance Monitor — :meth:`observe` runs production and returns telemetry;
* Modeling — :meth:`calibrate` fits the What-if Engine; :meth:`tune` /
  :meth:`run_application` drive any registered
  :class:`~repro.core.application.TuningApplication` (Table 3) through the
  unified observe → calibrate → propose lifecycle;
* Flighting — :meth:`flight_validate` deploys a proposal to a machine subset;
* Deployment — :meth:`deployment_impact` measures a before/after rollout with
  treatment effects, and :meth:`adopt` makes a config the new production
  baseline.

Every simulation draws from named, derived RNG streams, so a `Kea` instance
is fully reproducible from its seed. ``deployment_impact`` reuses one
workload seed for the before and after runs: the comparison measures the
configuration change, not workload luck.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import (
    Cluster,
    FleetSpec,
    build_cluster,
    default_fleet_spec,
    default_yarn_config,
)
from repro.cluster.config import YarnConfig
from repro.cluster.simulator import ClusterSimulator, SimulationConfig, SimulationResult
from repro.cluster.software import MachineGroupKey
from repro.core.application import (
    APPLICATIONS,
    TuningApplication,
    TuningProposal,
)

# Importing any applications submodule runs the package __init__, which
# registers all five Table 3 applications in APPLICATIONS.
from repro.core.applications.yarn_config import YarnTuningResult
from repro.core.whatif import WhatIfEngine
from repro.flighting.build import FlightPlan, PlannedFlight
from repro.flighting.deployment import (
    DeploymentModule,
    RolloutCheckpoint,
    RolloutPlan,
    RolloutPolicy,
    RolloutWaveRecord,
)
from repro.flighting.flight import Flight
from repro.flighting.tool import FlightingTool, FlightReport
from repro.ml.huber import HuberRegressor
from repro.ml.model import LinearModelBase
from repro.obs.profile import attach_profile_spans
from repro.obs.trace import current_tracer
from repro.flighting.safety import GateVerdict, SafetyGate
from repro.stats.treatment import TreatmentEffect, paired_effect
from repro.telemetry.monitor import PerformanceMonitor
from repro.utils.errors import ApplicationError, ConfigurationError
from repro.utils.rng import RngStreams
from repro.workload.generator import WorkloadGenerator, estimate_jobs_per_hour
from repro.workload.seasonality import SeasonalityProfile, SpikeProfile
from repro.workload.template import JobTemplate, default_templates

__all__ = [
    "Observation",
    "DeploymentImpact",
    "FlightValidation",
    "ApplicationRun",
    "StagedRollout",
    "Kea",
]


@dataclass
class Observation:
    """One production observation window: cluster, telemetry, raw results."""

    cluster: Cluster
    monitor: PerformanceMonitor
    result: SimulationResult
    days: float


@dataclass
class DeploymentImpact:
    """Before/after evaluation of a config rollout (Section 5.2.2)."""

    throughput: TreatmentEffect  # on machine-day Total Data Read
    latency: TreatmentEffect  # on machine-day average task seconds
    capacity_before: int
    capacity_after: int
    benchmark_runtime_change: dict[str, float]  # per-template relative change

    @property
    def capacity_gain(self) -> float:
        """Relative sellable-capacity change (container slots)."""
        if self.capacity_before <= 0:
            return 0.0
        return (self.capacity_after - self.capacity_before) / self.capacity_before

    def summary(self) -> str:
        """The paper's deployment readout."""
        lines = [
            f"throughput (Total Data Read): {self.throughput.relative_effect:+.1%} "
            f"(t={self.throughput.test.t_value:.2f})",
            f"task latency: {self.latency.relative_effect:+.1%} "
            f"(t={self.latency.test.t_value:.2f})",
            f"sellable capacity: {self.capacity_gain:+.1%} "
            f"({self.capacity_before} → {self.capacity_after} containers)",
        ]
        if self.benchmark_runtime_change:
            mean_change = float(np.mean(list(self.benchmark_runtime_change.values())))
            lines.append(f"benchmark job runtime: {mean_change:+.1%} on average")
        return "\n".join(lines)


@dataclass
class FlightValidation:
    """Outcome of one flighting window: per-flight reports plus, when a
    safety gate was supplied, its verdict on the flighted run."""

    reports: list[FlightReport]
    gate: GateVerdict | None = None


@dataclass
class StagedRollout:
    """Outcome of one wave-based fleet rollout (:meth:`Kea.staged_rollout`).

    ``waves`` are the per-wave impact records in execution order — fraction
    reached, machines newly covered, the safety-gate verdict that let the
    wave proceed (or halted it), and the wave's own treatment effect
    (flighted-so-far vs not-yet-covered machines inside its soak window).
    ``impact`` is the §5.2.2 before/after treatment-effect evaluation of the
    whole rollout window against an identical-workload baseline window.
    ``checkpoint`` is non-None exactly when a gate halted the rollout: pass
    it (with a ``resume_from_wave`` policy) to a later
    :meth:`Kea.staged_rollout` to re-enter at the failed wave.
    """

    waves: tuple[RolloutWaveRecord, ...]
    impact: DeploymentImpact
    machines_touched: int = 0
    #: Mirrors :attr:`~repro.flighting.deployment.RolloutExecution.completed`
    #: / ``reverted`` — the execution is the single source of these verdicts.
    completed: bool = False
    reverted: bool = False
    checkpoint: RolloutCheckpoint | None = None

    @property
    def failed_wave(self) -> RolloutWaveRecord | None:
        """The wave whose gate halted the rollout, when one did."""
        for wave in self.waves:
            if wave.gate is not None and not wave.gate.passed:
                return wave
        return None

    def summary(self) -> str:
        """Per-wave audit trail plus the rollout's measured impact."""
        lines = [wave.summary() for wave in self.waves]
        lines.append(self.impact.summary())
        return "\n".join(lines)


@dataclass
class ApplicationRun:
    """One application driven through the unified lifecycle by the facade."""

    application: str
    observation: Observation
    engine: WhatIfEngine | None
    proposal: TuningProposal

    def summary(self) -> str:
        """One-line operator readout of what the application proposed."""
        return f"[{self.application}] {self.proposal.summary}"


class Kea:
    """KEA wired to a simulated Cosmos-like production environment."""

    def __init__(
        self,
        fleet_spec: FleetSpec,
        yarn_config: YarnConfig | None = None,
        templates: tuple[JobTemplate, ...] | None = None,
        seasonality: SeasonalityProfile | SpikeProfile | None = None,
        jobs_per_hour: float | None = None,
        seed: int = 0,
        mean_task_duration_hint_s: float = 420.0,
        target_occupancy: float = 0.62,
    ):
        self.fleet_spec = fleet_spec
        self.current_config = (
            yarn_config.copy() if yarn_config is not None else default_yarn_config()
        )
        self.templates = templates if templates is not None else default_templates()
        self.seasonality = (
            seasonality if seasonality is not None else SeasonalityProfile()
        )
        self.streams = RngStreams(seed)
        self._run_counter = 0
        if jobs_per_hour is None:
            reference = build_cluster(fleet_spec, self.current_config.copy())
            jobs_per_hour = estimate_jobs_per_hour(
                reference.total_container_slots,
                target_occupancy,
                self.templates,
                mean_task_duration_s=mean_task_duration_hint_s,
            )
        self.jobs_per_hour = jobs_per_hour

    @classmethod
    def default(cls, seed: int = 0, scale: float = 1.0, **kwargs) -> "Kea":
        """A KEA instance over the default Figure 2-shaped fleet."""
        return cls(fleet_spec=default_fleet_spec(scale=scale), seed=seed, **kwargs)

    # ------------------------------------------------------------------
    # Production environment
    # ------------------------------------------------------------------
    def build_cluster(self, config: YarnConfig | None = None) -> Cluster:
        """A fresh cluster materialized with the given (default: current) config."""
        chosen = config if config is not None else self.current_config
        return build_cluster(self.fleet_spec, chosen.copy())

    def _next_streams(self, tag: str, reuse_tag: str | None = None) -> RngStreams:
        if reuse_tag is not None:
            return self.streams.spawn(reuse_tag)
        return self.streams.spawn(f"{tag}-{self._reserve_run()}")

    def _reserve_run(self) -> int:
        """Claim the next run number (each simulated window is a new draw)."""
        self._run_counter += 1
        return self._run_counter

    def _fresh_tag(self, prefix: str) -> str:
        """A workload tag no previous run of this instance has used.

        Paired evaluations (``deployment_impact``, ``benchmark_impact``) pin
        their before/after runs to one tag; the tag itself must advance the
        run counter, otherwise two consecutive evaluations would silently
        replay the identical workload.
        """
        return f"{prefix}-{self._reserve_run()}"

    def simulate(
        self,
        days: float,
        config: YarnConfig | None = None,
        sim_config: SimulationConfig | None = None,
        benchmark_period_hours: float = 0.0,
        workload_tag: str | None = None,
        load_multiplier: float = 1.0,
        actions: Callable[[ClusterSimulator], None] | None = None,
    ) -> Observation:
        """Run one production window and return its telemetry.

        ``workload_tag`` pins the workload RNG so two runs (e.g. before/after
        a config change) see the identical arrival sequence. ``actions`` may
        register scheduled actions on the simulator before it runs.
        """
        if days <= 0:
            raise ConfigurationError("days must be positive")
        cluster = self.build_cluster(config)
        streams = self._next_streams("run", reuse_tag=workload_tag)
        generator = WorkloadGenerator(
            self.templates,
            jobs_per_hour=self.jobs_per_hour * load_multiplier,
            seasonality=self.seasonality,
            streams=streams.spawn("workload"),
            benchmark_period_hours=benchmark_period_hours,
        )
        workload = generator.generate(days * 24.0)
        simulator = ClusterSimulator(
            cluster,
            workload,
            streams=streams.spawn("sim"),
            config=sim_config if sim_config is not None else SimulationConfig(),
        )
        if actions is not None:
            actions(simulator)
        tracer = current_tracer()
        with tracer.span(
            "kea.simulate", days=days, load_multiplier=load_multiplier
        ) as sim_span:
            result = simulator.run(days * 24.0)
        # Decompose the window's wall-clock into simulator phases so the
        # trace explains the same seconds the benchmarks report.
        attach_profile_spans(tracer, sim_span, result.profile)
        return Observation(
            cluster=cluster,
            monitor=PerformanceMonitor(result.frame),
            result=result,
            days=days,
        )

    def observe(self, days: float = 3.0, **kwargs) -> Observation:
        """Performance-Monitor entry point: observe current production."""
        return self.simulate(days, config=self.current_config, **kwargs)

    # ------------------------------------------------------------------
    # Modeling + optimization
    # ------------------------------------------------------------------
    def calibrate(
        self,
        monitor: PerformanceMonitor,
        model_factory: Callable[[], LinearModelBase] = HuberRegressor,
    ) -> WhatIfEngine:
        """Fit the What-if Engine on observed telemetry."""
        engine = WhatIfEngine(model_factory=model_factory)
        engine.calibrate(monitor)
        return engine

    # ------------------------------------------------------------------
    # Unified application lifecycle
    # ------------------------------------------------------------------
    def application(
        self, application: str | TuningApplication, **application_kwargs
    ) -> TuningApplication:
        """Resolve an application (registry name or instance) bound to this
        environment. Constructor kwargs only apply to names."""
        if isinstance(application, TuningApplication):
            if application_kwargs:
                raise ApplicationError(
                    "constructor kwargs only apply when the application is "
                    "given by name; configure the instance directly"
                )
            return application.bind(self)
        return APPLICATIONS.create(application, **application_kwargs).bind(self)

    def tune(
        self,
        application: str | TuningApplication = "yarn-config",
        observation: Observation | None = None,
        engine: WhatIfEngine | None = None,
        observe_days: float = 3.0,
        **application_kwargs,
    ) -> TuningProposal:
        """Run one application's observe → calibrate → propose lifecycle.

        The generic entry point behind all of Table 3: ``application`` names
        any registered :class:`~repro.core.application.TuningApplication`
        (or is an instance). A missing ``observation`` is collected with the
        application's observation overrides (e.g. resource sampling for SKU
        design); a missing ``engine`` is calibrated only when the
        application requires one.
        """
        app = self.application(application, **application_kwargs)
        return self._run_lifecycle(app, observation, engine, observe_days).proposal

    def run_application(
        self,
        name: str | TuningApplication,
        observe_days: float = 3.0,
        **application_kwargs,
    ) -> ApplicationRun:
        """Full lifecycle of one named application, with its artifacts.

        Like :meth:`tune`, but returns the observation and engine alongside
        the proposal so callers can flight/evaluate/deploy from one record::

            run = kea.run_application("queue-tuning")
            kea.adopt(run.proposal.proposed_config)
        """
        app = self.application(name, **application_kwargs)
        return self._run_lifecycle(app, None, None, observe_days)

    def _run_lifecycle(
        self,
        app: TuningApplication,
        observation: Observation | None,
        engine: WhatIfEngine | None,
        observe_days: float,
    ) -> ApplicationRun:
        """The shared observe → calibrate → propose body of :meth:`tune` and
        :meth:`run_application`."""
        tracer = current_tracer()
        if observation is None:
            with tracer.span("app.observe", application=app.name):
                observation = self.observe(
                    days=observe_days, **app.observation_overrides()
                )
        if engine is None and app.requires_engine:
            with tracer.span("app.calibrate", application=app.name):
                engine = self.calibrate(observation.monitor)
        with tracer.span("app.propose", application=app.name):
            proposal = app.propose(observation, engine)
        return ApplicationRun(
            application=app.name,
            observation=observation,
            engine=engine,
            proposal=proposal,
        )

    def tune_yarn_config(
        self,
        observation: Observation | None = None,
        engine: WhatIfEngine | None = None,
        **tuner_kwargs,
    ) -> YarnTuningResult:
        """Observational tuning of max running containers (Section 5.2).

        .. deprecated:: 1.2
           Use ``Kea.tune(application="yarn-config")`` (or
           :meth:`run_application`); this shim returns the same
           :class:`YarnTuningResult` from ``TuningProposal.details``.
        """
        warnings.warn(
            "Kea.tune_yarn_config() is deprecated; use "
            "Kea.tune(application='yarn-config') / "
            "Kea.run_application('yarn-config') instead",
            DeprecationWarning,
            stacklevel=2,
        )
        proposal = self.tune(
            "yarn-config",
            observation=observation,
            engine=engine,
            **tuner_kwargs,
        )
        return proposal.details

    # ------------------------------------------------------------------
    # Flighting + deployment
    # ------------------------------------------------------------------
    def flight_validate(
        self,
        tuning: YarnTuningResult | TuningProposal,
        hours: float = 24.0,
        machines_per_group: int = 8,
        metrics: tuple[str, ...] = ("AverageRunningContainers", "CpuUtilization"),
        load_multiplier: float = 1.6,
    ) -> list[FlightReport]:
        """Pilot flights: verify the new limits actually move the direct metrics.

        Mirrors the paper's first pilot flights, which confirmed that changing
        ``max_num_running_containers`` changes observed running containers.
        Flights run in the demand-bound regime (``load_multiplier`` > 1): a
        raised limit can only show up in *observed* running containers when
        there is queued work ready to fill the new slots.
        """
        return self.flight_campaign(
            tuning.config_deltas,
            hours=hours,
            machines_per_group=machines_per_group,
            metrics=metrics,
            load_multiplier=load_multiplier,
        ).reports

    def flight_campaign(
        self,
        plan: FlightPlan | dict[MachineGroupKey, int],
        hours: float = 24.0,
        machines_per_group: int = 8,
        metrics: tuple[str, ...] = ("AverageRunningContainers", "CpuUtilization"),
        load_multiplier: float = 1.6,
        workload_tag: str | None = None,
        safety_gate: SafetyGate | None = None,
        actions: Callable[[ClusterSimulator], None] | None = None,
    ) -> FlightValidation:
        """Campaign-grade flighting: pilot flights plus an optional safety gate.

        ``plan`` is a :class:`~repro.flighting.build.FlightPlan` of arbitrary
        config builds (YARN limits, container deltas, software re-images,
        power caps, composites) with declarative machine selectors; a bare
        per-group container-delta dict is accepted as the classic shorthand.
        Each entry flights at most half its selected population (capped at
        ``machines_per_group``) so the unflighted half remains the control.

        The continuous tuning service drives this hook directly: it pins the
        flight window to an explicit ``workload_tag`` (so re-running the same
        campaign round replays the same arrivals, in any process) and asks a
        :class:`~repro.flighting.safety.SafetyGate` to judge the flighted run
        before the rollout may proceed. ``actions`` registers extra
        scheduled actions (e.g. a scenario's fault plan) on the flight
        window's simulator before it runs.
        """
        if isinstance(plan, dict):
            plan = FlightPlan.from_container_deltas(plan)
        elif not isinstance(plan, FlightPlan):
            plan = FlightPlan(entries=tuple(plan))
        reports: list[FlightReport] = []
        cluster = self.build_cluster()

        flights: list[Flight] = []
        for entry in plan:
            machines = _pick_pilot_machines(entry, cluster, machines_per_group)
            if len(machines) < 2:
                continue
            flights.append(
                Flight(
                    name=entry.name,
                    build=entry.build,
                    machines=machines,
                    start_hour=0.0,
                    end_hour=hours,
                )
            )
        if not flights:
            return FlightValidation(reports=reports, gate=None)

        # Run the flights against a demand-bound window on this cluster. One
        # FlightingTool both schedules the flights (before the run) and
        # evaluates them (after).
        streams = self._next_streams("flight", reuse_tag=workload_tag)
        generator = WorkloadGenerator(
            self.templates,
            jobs_per_hour=self.jobs_per_hour * load_multiplier,
            seasonality=self.seasonality,
            streams=streams.spawn("workload"),
        )
        workload = generator.generate(hours)
        simulator = ClusterSimulator(cluster, workload, streams=streams.spawn("sim"))
        tool = FlightingTool(simulator)
        for flight in flights:
            tool.add_flight(flight)
        if actions is not None:
            actions(simulator)
        tracer = current_tracer()
        with tracer.span(
            "kea.flight", hours=hours, flights=len(flights)
        ) as flight_span:
            result = simulator.run(hours)
        attach_profile_spans(tracer, flight_span, result.profile)
        monitor = PerformanceMonitor(result.frame)
        for flight in flights:
            reports.append(tool.evaluate(flight, monitor, metrics=metrics))
        verdict = safety_gate.evaluate(simulator) if safety_gate is not None else None
        return FlightValidation(reports=reports, gate=verdict)

    def deployment_impact(
        self,
        proposed: YarnConfig,
        days: float = 2.0,
        benchmark_period_hours: float = 6.0,
        load_multiplier: float = 1.6,
        workload_tag: str | None = None,
        actions: Callable[[ClusterSimulator], None] | None = None,
    ) -> DeploymentImpact:
        """Before/after rollout evaluation with treatment effects (§5.2.2).

        Both runs replay the identical workload arrival sequence, so the
        paired per-machine effects isolate the configuration change. The
        default ``load_multiplier`` pushes the cluster into the demand-bound
        regime Cosmos operates in (there is always queued work), where extra
        well-placed containers convert into throughput. Pass ``workload_tag``
        to pin the window explicitly (campaign replay/caching); otherwise a
        fresh tag is reserved per call, so consecutive evaluations never
        silently replay the same workload. ``actions`` (e.g. a scenario's
        fault plan) is applied to *both* windows, so the pairing stays fair
        under injected faults.
        """
        tag = workload_tag if workload_tag is not None else self._fresh_tag("deploy")
        tracer = current_tracer()
        with tracer.span("kea.deployment_impact", days=days, workload_tag=tag):
            with tracer.span("window.before"):
                before = self.simulate(
                    days,
                    config=self.current_config,
                    benchmark_period_hours=benchmark_period_hours,
                    workload_tag=tag,
                    load_multiplier=load_multiplier,
                    actions=actions,
                )
            with tracer.span("window.after"):
                after = self.simulate(
                    days,
                    config=proposed,
                    benchmark_period_hours=benchmark_period_hours,
                    workload_tag=tag,
                    load_multiplier=load_multiplier,
                    actions=actions,
                )
        return _paired_impact(before, after)

    def staged_rollout(
        self,
        plan: RolloutPlan | FlightPlan | dict[MachineGroupKey, int],
        policy: RolloutPolicy | None = None,
        days: float = 1.0,
        benchmark_period_hours: float = 0.0,
        load_multiplier: float = 1.6,
        workload_tag: str | None = None,
        gate: SafetyGate | None = None,
        checkpoint: RolloutCheckpoint | None = None,
        actions: Callable[[ClusterSimulator], None] | None = None,
    ) -> StagedRollout:
        """Ship a validated plan across the fleet in gated waves (§5.2.2).

        ``plan`` is a staged :class:`~repro.flighting.deployment.RolloutPlan`,
        a :class:`~repro.flighting.build.FlightPlan` to stage under ``policy``
        (default: pilot → 10% → 50% → fleet), or the classic per-group
        container-delta dict. The rollout executes inside one
        ``days``-long production window: each wave widens every build's
        coverage to its fleet fraction, the policy's latency gate (or the
        ``gate`` override) is evaluated between waves, and a failing gate
        reverts every already-deployed wave — the fleet ends bit-identical
        to its pre-rollout configuration, and the returned rollout carries
        the halt's :class:`~repro.flighting.deployment.RolloutCheckpoint`.

        Passing that ``checkpoint`` back (with the plan's policy set to
        ``resume_from_wave``) *resumes* the rollout in this window: the
        checkpointed coverage is restored at window start — the pilot and
        other already-proven waves are not re-run — and execution re-enters
        at the failed wave, gates included.

        The returned :class:`StagedRollout` carries the per-wave records —
        each deployed wave annotated with its own treatment effect
        (flighted-so-far vs not-yet-covered machines in the wave's soak
        window) — plus a :class:`DeploymentImpact` pairing the rollout
        window against a baseline window replaying the identical workload
        arrivals. ``actions`` (e.g. a scenario's fault plan) is applied to
        both the baseline and the rollout window, so a mid-rollout fault
        degrades the rollout's gates without biasing the paired impact.
        """
        if isinstance(plan, dict):
            plan = FlightPlan.from_container_deltas(plan)
        if isinstance(plan, FlightPlan):
            plan = RolloutPlan.from_flight_plan(plan, policy)
        elif policy is not None:
            raise ConfigurationError(
                "policy only applies when staging a FlightPlan; the RolloutPlan "
                "already carries one"
            )
        if not plan:
            raise ConfigurationError("staged rollout needs a non-empty plan")
        # Fail invalid plans (bad schedule, overlapping selectors, empty
        # selections, a resume without its checkpoint) before paying for the
        # baseline window.
        DeploymentModule.resolve_resume(plan, checkpoint)
        plan.validate(self.build_cluster())
        plan.policy.schedule(days * 24.0)
        tag = workload_tag if workload_tag is not None else self._fresh_tag("rollout")
        tracer = current_tracer()
        with tracer.span(
            "kea.staged_rollout",
            days=days,
            workload_tag=tag,
            resuming=checkpoint is not None,
        ):
            with tracer.span("window.baseline"):
                before = self.simulate(
                    days,
                    config=self.current_config,
                    benchmark_period_hours=benchmark_period_hours,
                    workload_tag=tag,
                    load_multiplier=load_multiplier,
                    actions=actions,
                )
            executions: list = []

            def stage_waves(sim: ClusterSimulator) -> None:
                if actions is not None:
                    actions(sim)
                module = DeploymentModule(sim.cluster)
                executions.append(
                    module.schedule(
                        sim, plan, days * 24.0, gate=gate, checkpoint=checkpoint
                    )
                )

            with tracer.span("window.rollout"):
                after = self.simulate(
                    days,
                    config=self.current_config,
                    benchmark_period_hours=benchmark_period_hours,
                    workload_tag=tag,
                    load_multiplier=load_multiplier,
                    actions=stage_waves,
                )
        execution = executions[0]
        DeploymentModule.attach_wave_impacts(after.result.frame, execution)
        return StagedRollout(
            waves=tuple(execution.records),
            impact=_paired_impact(before, after),
            machines_touched=execution.machines_touched,
            completed=execution.completed,
            reverted=execution.reverted,
            checkpoint=execution.checkpoint,
        )

    def benchmark_impact(
        self,
        proposed: YarnConfig,
        days: float = 1.0,
        benchmark_period_hours: float = 3.0,
        load_multiplier: float = 1.0,
        workload_tag: str | None = None,
    ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Before/after runtimes of the benchmark jobs (Figure 11).

        Returns, per benchmark template, the (before, after) runtime arrays —
        ready for ECDF plotting and mean-change computation. Runs at normal
        production load by default: job runtimes at deep saturation are
        dominated by queueing noise, which is not what Figure 11 measures.
        """
        tag = workload_tag if workload_tag is not None else self._fresh_tag("bench")
        before = self.simulate(
            days,
            config=self.current_config,
            benchmark_period_hours=benchmark_period_hours,
            workload_tag=tag,
            load_multiplier=load_multiplier,
        )
        after = self.simulate(
            days,
            config=proposed,
            benchmark_period_hours=benchmark_period_hours,
            workload_tag=tag,
            load_multiplier=load_multiplier,
        )
        before_runs = _benchmark_runtimes(before)
        after_runs = _benchmark_runtimes(after)
        return {
            template: (
                np.asarray(before_runs[template]),
                np.asarray(after_runs[template]),
            )
            for template in sorted(set(before_runs) & set(after_runs))
        }

    def adopt(self, config: YarnConfig) -> None:
        """Make ``config`` the production baseline for subsequent runs."""
        self.current_config = config.copy()


def _pick_pilot_machines(
    entry: PlannedFlight, cluster: Cluster, machines_per_group: int
) -> list:
    """The pilot population for one planned flight.

    At most half the selected machines (capped at ``machines_per_group``) so
    the other half stays as the control arm. Chassis-aligned flights take
    whole chassis — a chassis-wide build (power cap) deployed to part of a
    chassis would silently cap its own controls.
    """
    candidates = entry.select_machines(cluster)
    max_flighted = len(candidates) // 2
    n_flighted = min(machines_per_group, max_flighted)
    if n_flighted < 2:
        return []
    if not entry.chassis_aligned:
        return candidates[:n_flighted]
    # Whole chassis only, and never more than half the candidates: a chassis
    # that would eat into the control arm is skipped (a smaller later
    # chassis may still fit). A population living in one big chassis simply
    # cannot host a controlled pilot and the flight is skipped.
    chassis_groups: dict[int, list] = {}
    for machine in candidates:
        chassis_groups.setdefault(machine.chassis, []).append(machine)
    machines: list = []
    for group in chassis_groups.values():
        if len(machines) >= n_flighted:
            break
        if len(machines) + len(group) > max_flighted:
            continue
        machines.extend(group)
    return machines if len(machines) >= 2 else []


def _paired_impact(before: Observation, after: Observation) -> DeploymentImpact:
    """§5.2.2 treatment-effect evaluation of two identical-workload windows."""

    def paired_machine_day(field: str) -> tuple[np.ndarray, np.ndarray]:
        before_vals = {
            (a.machine_id, a.day): getattr(a, field)
            for a in before.monitor.daily_aggregates()
        }
        after_vals = {
            (a.machine_id, a.day): getattr(a, field)
            for a in after.monitor.daily_aggregates()
        }
        keys = sorted(set(before_vals) & set(after_vals))
        return (
            np.array([before_vals[k] for k in keys]),
            np.array([after_vals[k] for k in keys]),
        )

    throughput = paired_effect(*paired_machine_day("total_data_read_bytes"))
    latency = paired_effect(*paired_machine_day("avg_task_seconds"))

    benchmark_change: dict[str, float] = {}
    before_bench = _benchmark_runtimes(before)
    after_bench = _benchmark_runtimes(after)
    for template in sorted(set(before_bench) & set(after_bench)):
        b = float(np.mean(before_bench[template]))
        a = float(np.mean(after_bench[template]))
        if b > 0:
            benchmark_change[template] = (a - b) / b

    return DeploymentImpact(
        throughput=throughput,
        latency=latency,
        capacity_before=before.cluster.total_container_slots,
        capacity_after=after.cluster.total_container_slots,
        benchmark_runtime_change=benchmark_change,
    )


def _benchmark_runtimes(observation: Observation) -> dict[str, list[float]]:
    runtimes: dict[str, list[float]] = {}
    for job in observation.result.jobs:
        if job.is_benchmark:
            runtimes.setdefault(job.template, []).append(job.runtime)
    return runtimes
