"""Capacity and monetary valuation of tuning improvements.

Section 5.3: "KEA can also be used to convert any performance improvement
into capacity gain (given the same task latency), allowing detailed
quantitative evaluation for all engineering changes in monetary values."
The paper's arithmetic: a 2% sellable-capacity gain on a fleet whose hardware
capex exceeds $1B is worth tens of millions of dollars per year.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CapacityValuation", "capacity_gain_fraction"]


def capacity_gain_fraction(before_slots: float, after_slots: float) -> float:
    """Relative sellable-capacity change (container slots at equal latency)."""
    if before_slots <= 0:
        raise ValueError("before_slots must be positive")
    return (after_slots - before_slots) / before_slots


@dataclass(frozen=True, slots=True)
class CapacityValuation:
    """Convert capacity fractions into yearly dollar values.

    Defaults follow Table 1's public numbers: > $1B hardware capex amortized
    over ~4 years plus roughly equal opex — so 1% of fleet capacity is worth
    on the order of $5M/year.
    """

    fleet_capex_usd: float = 1_000_000_000.0
    amortization_years: float = 4.0
    opex_multiplier: float = 1.0  # opex ≈ amortized capex

    def yearly_cost_usd(self) -> float:
        """Annualized cost of running the whole fleet."""
        amortized = self.fleet_capex_usd / self.amortization_years
        return amortized * (1.0 + self.opex_multiplier)

    def yearly_value_usd(self, capacity_fraction: float) -> float:
        """Dollar value per year of a relative capacity gain."""
        return capacity_fraction * self.yearly_cost_usd()

    def describe(self, capacity_fraction: float) -> str:
        """Human-readable valuation, in the paper's phrasing."""
        value = self.yearly_value_usd(capacity_fraction)
        return (
            f"{capacity_fraction:+.1%} sellable capacity ≈ "
            f"${value / 1e6:,.0f}M per year at fleet scale"
        )
